/// \file rules.cpp
/// The built-in lint rules and their fixed registry order.
///
/// Ordering note: registry order is the tie-break for findings at the same
/// event, and clock-monotonicity must precede the structural rules so the
/// validate() forwarder reproduces the historical single-pass issue order
/// (the old loop checked the timestamp before the event kind).

#include <iomanip>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/depgraph.hpp"
#include "analysis/segments.hpp"
#include "lint/lint.hpp"
#include "util/error.hpp"

namespace perfvar::lint {
namespace {

using trace::Event;
using trace::EventKind;
using trace::FunctionId;
using trace::ProcessId;
using trace::TraceView;

// ---------------------------------------------------------------------------
// Per-rank structural rules (the validate() subset).

/// Timestamps must be non-decreasing within each process stream.
class ClockMonotonicityRule final : public Rule {
public:
  std::string_view id() const override { return "clock-monotonicity"; }
  std::string_view description() const override {
    return "timestamps must be non-decreasing within each process stream";
  }
  void checkProcess(const RuleContext& context, ProcessId p,
                    Sink& sink) const override {
    const trace::RankPin pin = context.trace().rank(p);
    const trace::EventSpan events = pin.events();
    trace::Timestamp last = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (i > 0 && events[i].time < last) {
        sink.reportAt(Severity::Error, i, "timestamp decreases");
      }
      last = events[i].time;
    }
  }
};

/// Enter/Leave events must form a properly nested stack; every frame must
/// be closed by the end of the stream. Events referencing undefined
/// functions are skipped here (undefined-function-ref reports them), so
/// one malformed id does not cascade into bogus stack findings.
class StackBalanceRule final : public Rule {
public:
  std::string_view id() const override { return "stack-balance"; }
  std::string_view description() const override {
    return "enter/leave events must nest properly and close every frame";
  }
  void checkProcess(const RuleContext& context, ProcessId p,
                    Sink& sink) const override {
    const TraceView& tr = context.trace();
    const trace::RankPin pin = tr.rank(p);
    const trace::EventSpan events = pin.events();
    std::vector<FunctionId> stack;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      if (e.ref >= tr.functions().size() &&
          (e.kind == EventKind::Enter || e.kind == EventKind::Leave)) {
        continue;
      }
      if (e.kind == EventKind::Enter) {
        stack.push_back(e.ref);
      } else if (e.kind == EventKind::Leave) {
        if (stack.empty()) {
          sink.reportAt(Severity::Error, i, "leave without matching enter");
        } else if (stack.back() != e.ref) {
          std::ostringstream os;
          os << "leave of '" << tr.functions().name(e.ref)
             << "' does not match innermost enter '"
             << tr.functions().name(stack.back()) << "'";
          sink.reportAt(Severity::Error, i, os.str());
        } else {
          stack.pop_back();
        }
      }
    }
    if (!stack.empty()) {
      std::ostringstream os;
      os << stack.size() << " unclosed enter frame(s), innermost '"
         << tr.functions().name(stack.back()) << "'";
      sink.reportAt(Severity::Error, events.size(), os.str());
    }
  }
};

/// Enter/Leave refs must name a defined function.
class UndefinedFunctionRefRule final : public Rule {
public:
  std::string_view id() const override { return "undefined-function-ref"; }
  std::string_view description() const override {
    return "enter/leave events must reference a defined function";
  }
  void checkProcess(const RuleContext& context, ProcessId p,
                    Sink& sink) const override {
    const TraceView& tr = context.trace();
    const trace::RankPin pin = tr.rank(p);
    const trace::EventSpan events = pin.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      if (e.ref >= tr.functions().size()) {
        if (e.kind == EventKind::Enter) {
          sink.reportAt(Severity::Error, i,
                        "enter references undefined function");
        } else if (e.kind == EventKind::Leave) {
          sink.reportAt(Severity::Error, i,
                        "leave references undefined function");
        }
      }
    }
  }
};

/// Metric samples must reference a defined metric.
class UndefinedMetricRefRule final : public Rule {
public:
  std::string_view id() const override { return "undefined-metric-ref"; }
  std::string_view description() const override {
    return "metric samples must reference a defined metric";
  }
  void checkProcess(const RuleContext& context, ProcessId p,
                    Sink& sink) const override {
    const TraceView& tr = context.trace();
    const trace::RankPin pin = tr.rank(p);
    const trace::EventSpan events = pin.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].kind == EventKind::Metric &&
          events[i].ref >= tr.metrics().size()) {
        sink.reportAt(Severity::Error, i,
                      "metric sample references undefined metric");
      }
    }
  }
};

/// Message events must name an existing peer and never the sender itself.
class MessageEndpointsRule final : public Rule {
public:
  std::string_view id() const override { return "message-endpoints"; }
  std::string_view description() const override {
    return "message events must name an existing peer process (not self)";
  }
  void checkProcess(const RuleContext& context, ProcessId p,
                    Sink& sink) const override {
    const TraceView& tr = context.trace();
    const trace::RankPin pin = tr.rank(p);
    const trace::EventSpan events = pin.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      if (e.kind != EventKind::MpiSend && e.kind != EventKind::MpiRecv) {
        continue;
      }
      if (e.ref >= tr.processCount()) {
        sink.reportAt(Severity::Error, i,
                      "message references undefined peer process");
      } else if (e.ref == p) {
        sink.reportAt(Severity::Error, i, "message to/from self");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Whole-trace rules.

/// Send/recv counts must agree per directed rank pair. Message records are
/// unilateral in the event model, so a lost or duplicated record shows up
/// as a count mismatch (e.g. after a salvage load or a buggy writer).
class MessagePairingRule final : public Rule {
public:
  std::string_view id() const override { return "message-pairing"; }
  std::string_view description() const override {
    return "send and receive counts must match per directed rank pair";
  }
  void checkTrace(const RuleContext& context, Sink& sink) const override {
    const TraceView& tr = context.trace();
    // (sender, receiver) -> {sends recorded at sender, recvs at receiver};
    // std::map for deterministic iteration order.
    std::map<std::pair<ProcessId, ProcessId>,
             std::pair<std::uint64_t, std::uint64_t>>
        pairs;
    for (ProcessId p = 0; p < tr.processCount(); ++p) {
      const trace::RankPin pin = tr.rank(p);
      for (const Event& e : pin.events()) {
        if (e.ref >= tr.processCount() || e.ref == p) {
          continue;  // message-endpoints reports these
        }
        if (e.kind == EventKind::MpiSend) {
          ++pairs[{p, static_cast<ProcessId>(e.ref)}].first;
        } else if (e.kind == EventKind::MpiRecv) {
          ++pairs[{static_cast<ProcessId>(e.ref), p}].second;
        }
      }
    }
    for (const auto& [pair, counts] : pairs) {
      if (counts.first != counts.second) {
        std::ostringstream os;
        os << "rank " << pair.first << " sent " << counts.first
           << " message(s) to rank " << pair.second << ", which received "
           << counts.second;
        sink.report(Severity::Warning, os.str());
      }
    }
  }
};

/// Definition table hygiene: duplicate names (possible after a corrupted
/// load; the in-memory registries intern by name) and function definitions
/// no event ever references. Unreferenced *metric* definitions are not
/// flagged: measurement setups routinely declare every available counter
/// up front and sample only a subset (the trace generators do the same).
class DefinitionIntegrityRule final : public Rule {
public:
  std::string_view id() const override { return "definition-integrity"; }
  std::string_view description() const override {
    return "definition tables must be duplicate-free; every function "
           "definition must be referenced";
  }
  void checkTrace(const RuleContext& context, Sink& sink) const override {
    const TraceView& tr = context.trace();
    reportDuplicates(tr, sink);

    std::vector<bool> functionUsed(tr.functions().size(), false);
    for (ProcessId p = 0; p < tr.processCount(); ++p) {
      const trace::RankPin pin = tr.rank(p);
      for (const Event& e : pin.events()) {
        if ((e.kind == EventKind::Enter || e.kind == EventKind::Leave) &&
            e.ref < functionUsed.size()) {
          functionUsed[e.ref] = true;
        }
      }
    }
    for (std::size_t f = 0; f < functionUsed.size(); ++f) {
      if (!functionUsed[f]) {
        sink.report(Severity::Info,
                    "function '" + tr.functions().name(
                                       static_cast<FunctionId>(f)) +
                        "' is defined but never referenced by any event");
      }
    }
  }

private:
  static void reportDuplicates(const TraceView& tr, Sink& sink) {
    std::map<std::string, std::uint64_t> functionNames;
    for (const auto& def : tr.functions().all()) {
      ++functionNames[def.name];
    }
    for (const auto& [name, n] : functionNames) {
      if (n > 1) {
        std::ostringstream os;
        os << "function name '" << name << "' defined " << n << " times";
        sink.report(Severity::Warning, os.str());
      }
    }
    std::map<std::string, std::uint64_t> metricNames;
    for (const auto& def : tr.metrics().all()) {
      ++metricNames[def.name];
    }
    for (const auto& [name, n] : metricNames) {
      if (n > 1) {
        std::ostringstream os;
        os << "metric name '" << name << "' defined " << n << " times";
        sink.report(Severity::Warning, os.str());
      }
    }
  }
};

/// Functions whose *name* clearly denotes MPI or OpenMP must carry the
/// matching paradigm, or the sync classifier will miss them and their wait
/// time pollutes SOS-times (paper Section V).
class SyncCoverageRule final : public Rule {
public:
  std::string_view id() const override { return "sync-coverage"; }
  std::string_view description() const override {
    return "function names that look like MPI/OpenMP must carry that paradigm";
  }
  void checkTrace(const RuleContext& context, Sink& sink) const override {
    const TraceView& tr = context.trace();
    const auto& defs = tr.functions().all();
    for (std::size_t f = 0; f < defs.size(); ++f) {
      const trace::FunctionDef& def = defs[f];
      const bool looksMpi = def.name.rfind("MPI_", 0) == 0;
      const bool looksOmp = def.name.rfind("omp_", 0) == 0 ||
                            def.name.rfind("!$omp", 0) == 0;
      if (looksMpi && def.paradigm != trace::Paradigm::MPI) {
        sink.report(Severity::Warning,
                    "function '" + def.name +
                        "' looks like MPI by name but has paradigm " +
                        trace::paradigmName(def.paradigm) +
                        "; the sync classifier will not subtract it "
                        "(wrong SOS-times)");
      } else if (looksOmp && def.paradigm != trace::Paradigm::OpenMP) {
        sink.report(Severity::Warning,
                    "function '" + def.name +
                        "' looks like OpenMP by name but has paradigm " +
                        trace::paradigmName(def.paradigm) +
                        "; the sync classifier will not subtract it "
                        "(wrong SOS-times)");
      }
    }
  }
};

/// The paper's dominant-function heuristic needs a candidate with at least
/// invocationMultiplier * p invocations; without one the segmentation (and
/// the whole variation analysis) is undefined.
class DominantEligibilityRule final : public Rule {
public:
  std::string_view id() const override { return "dominant-eligibility"; }
  std::string_view description() const override {
    return "a dominant-function candidate with >= multiplier*p invocations "
           "must exist";
  }
  void checkTrace(const RuleContext& context, Sink& sink) const override {
    const TraceView* tr = context.analysisTrace();
    if (tr == nullptr || tr->eventCount() == 0) {
      return;  // nothing analyzable; other rules report why
    }
    const analysis::DominantSelection* sel = context.dominantOrNull();
    if (sel == nullptr) {
      return;  // profile failed; structural rules carry the findings
    }
    if (!sel->hasDominant()) {
      std::ostringstream os;
      os << "no function reaches "
         << context.options().invocationMultiplier << " * " << tr->processCount()
         << " invocations; time-dominant segmentation is undefined";
      if (!sel->rejectedTopLevel.empty()) {
        os << " (best rejected candidate: '"
           << tr->functions().name(sel->rejectedTopLevel.front().function)
           << "' with " << sel->rejectedTopLevel.front().invocations
           << " invocation(s))";
      }
      sink.report(Severity::Warning, os.str());
    }
  }
};

/// Segment counts should agree across ranks; skew means ranks executed the
/// dominant function different numbers of times and per-iteration
/// statistics compare different iterations against each other.
class SegmentSkewRule final : public Rule {
public:
  std::string_view id() const override { return "segment-skew"; }
  std::string_view description() const override {
    return "segment counts of the dominant function should match across ranks";
  }
  void checkTrace(const RuleContext& context, Sink& sink) const override {
    const TraceView* tr = context.analysisTrace();
    const analysis::DominantSelection* sel = context.dominantOrNull();
    if (tr == nullptr || sel == nullptr || !sel->hasDominant()) {
      return;  // dominant-eligibility reports the missing candidate
    }
    const FunctionId f = sel->dominant().function;
    const auto segments = analysis::extractSegments(*tr, f);
    const analysis::SegmentationInfo info =
        analysis::describeSegmentation(segments);
    if (!info.uniform) {
      std::ostringstream os;
      os << "segment counts of dominant function '" << tr->functions().name(f)
         << "' differ across ranks (min " << info.minPerProcess << ", max "
         << info.maxPerProcess
         << "); per-iteration statistics will misalign";
      sink.report(Severity::Warning, os.str());
    }
  }
};

/// Zero-duration invocations: enter and leave carry the same timestamp.
/// Legal, but such regions vanish from every duration-based statistic and
/// usually indicate too-coarse timer resolution.
class ZeroDurationRule final : public Rule {
public:
  std::string_view id() const override { return "zero-duration"; }
  std::string_view description() const override {
    return "function invocations should have a non-zero duration";
  }
  void checkProcess(const RuleContext& context, ProcessId p,
                    Sink& sink) const override {
    const TraceView& tr = context.trace();
    const trace::RankPin pin = tr.rank(p);
    const trace::EventSpan events = pin.events();
    // Tolerant replay: ignore refs the structural rules already flag and
    // only pair a leave with a matching innermost enter.
    std::vector<std::pair<FunctionId, std::pair<trace::Timestamp, bool>>>
        stack;  // (function, (enter time, enter time was ordered))
    trace::Timestamp last = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      const bool ordered = i == 0 || e.time >= last;
      last = e.time;
      if (e.ref >= tr.functions().size() ||
          (e.kind != EventKind::Enter && e.kind != EventKind::Leave)) {
        continue;
      }
      if (e.kind == EventKind::Enter) {
        stack.push_back({e.ref, {e.time, ordered}});
      } else if (!stack.empty() && stack.back().first == e.ref) {
        // Only flag exact zero on a clean (ordered) pair: a backwards
        // clock is clock-monotonicity's finding, not this rule's.
        if (ordered && stack.back().second.second &&
            e.time == stack.back().second.first) {
          sink.reportAt(Severity::Info, i,
                        "zero-duration invocation of '" +
                            tr.functions().name(e.ref) + "'");
        }
        stack.pop_back();
      }
    }
  }
};

/// Quarantined ranks of a salvage load: analyses silently exclude them, so
/// surface each one, and escalate when nothing analyzable is left.
class QuarantineInteractionRule final : public Rule {
public:
  std::string_view id() const override { return "quarantine-interaction"; }
  std::string_view description() const override {
    return "salvage-quarantined ranks are excluded from analyses";
  }
  void checkTrace(const RuleContext& context, Sink& sink) const override {
    const TraceView& tr = context.trace();
    if (tr.quarantined().empty()) {
      return;
    }
    for (const trace::QuarantinedRank& q : tr.quarantined()) {
      std::ostringstream os;
      os << "rank quarantined by salvage load ("
         << errorCodeName(q.error) << "): " << q.eventsSalvaged
         << " event(s) salvaged, " << q.eventsDropped
         << " dropped; analyses exclude this rank";
      if (q.process < tr.processCount()) {
        sink.reportProcess(Severity::Warning, q.process, os.str());
      } else {
        os << " (quarantine metadata names nonexistent process "
           << q.process << ")";
        sink.report(Severity::Error, os.str());
      }
    }
    if (context.analysisTrace() == nullptr) {
      sink.report(Severity::Error,
                  "every rank is quarantined; nothing left to analyze");
    }
  }
};

// ---------------------------------------------------------------------------
// Cross-rank dependency rules (the happens-before graph detectors; see
// analysis/depgraph.hpp). All three share the context's one cached
// DepAnalysis and run in the serial global phase.

/// "NN.N%" of a share.
std::string sharePercent(double share) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << share * 100.0 << '%';
  return os.str();
}

std::string depFunctionName(const TraceView& tr, FunctionId f) {
  return f < tr.functions().size() ? tr.functions().name(f) : "(untracked)";
}

/// One rank owning more than rankShareThreshold of the critical path: the
/// run is serialized on it — speeding up any other rank cannot help.
class CriticalPathDominatedRankRule final : public Rule {
public:
  std::string_view id() const override {
    return "critical-path-dominated-rank";
  }
  std::string_view description() const override {
    return "no single rank should dominate the critical path";
  }
  void checkTrace(const RuleContext& context, Sink& sink) const override {
    const analysis::DepAnalysis* dep = context.depAnalysisOrNull();
    if (dep == nullptr) {
      return;  // nothing analyzable; other rules report why
    }
    for (const analysis::RankCriticality& r :
         dep->serialization.dominatedRanks) {
      std::ostringstream os;
      os << "rank " << r.process << " owns " << sharePercent(r.share)
         << " of the critical path (" << r.ticks
         << " tick(s)); the run is serialized on this rank (threshold "
         << sharePercent(
                context.options().serialization.rankShareThreshold)
         << ")";
      sink.reportProcess(Severity::Warning, r.process, os.str());
    }
  }
};

/// One (rank, function) region owning more than functionShareThreshold of
/// the critical path: the GAPP-style serialization bottleneck.
class SerializationBottleneckRule final : public Rule {
public:
  std::string_view id() const override { return "serialization-bottleneck"; }
  std::string_view description() const override {
    return "no single code region on one rank should own most of the "
           "critical path";
  }
  void checkTrace(const RuleContext& context, Sink& sink) const override {
    const analysis::DepAnalysis* dep = context.depAnalysisOrNull();
    if (dep == nullptr) {
      return;
    }
    const TraceView* tr = context.analysisTrace();
    for (const analysis::RegionCriticality& r :
         dep->serialization.bottlenecks) {
      std::ostringstream os;
      os << "'" << depFunctionName(*tr, r.function) << "' on rank "
         << r.process << " owns " << sharePercent(r.share)
         << " of the critical path (" << r.ticks
         << " tick(s)); this region serializes the run (threshold "
         << sharePercent(
                context.options().serialization.functionShareThreshold)
         << ")";
      sink.reportProcess(Severity::Warning, r.process, os.str());
    }
  }
};

/// A one-off delay whose late arrivals propagate rank-to-rank as a
/// wavefront (Afzal et al.): blame the origin, not the ranks that waited.
class IdleWavePropagationRule final : public Rule {
public:
  std::string_view id() const override { return "idle-wave-propagation"; }
  std::string_view description() const override {
    return "late arrivals should not propagate across ranks as an idle wave";
  }
  void checkTrace(const RuleContext& context, Sink& sink) const override {
    const analysis::DepAnalysis* dep = context.depAnalysisOrNull();
    if (dep == nullptr) {
      return;
    }
    for (const analysis::IdleWave& wave : dep->idleWaves.waves) {
      std::ostringstream os;
      os << "idle wave originating at rank " << wave.origin
         << " propagated across " << wave.distinctRanks << " rank(s) ("
         << wave.hops.size() << " late arrival(s), max wait "
         << wave.maxWaitTicks
         << " tick(s)); a delay on the origin rank desynchronized its "
            "neighborhood";
      sink.reportProcess(Severity::Warning, wave.origin, os.str());
    }
  }
};

}  // namespace

const RuleRegistry& RuleRegistry::builtin() {
  static const RuleRegistry registry = [] {
    RuleRegistry r;
    r.add(std::make_shared<ClockMonotonicityRule>());
    r.add(std::make_shared<StackBalanceRule>());
    r.add(std::make_shared<UndefinedFunctionRefRule>());
    r.add(std::make_shared<UndefinedMetricRefRule>());
    r.add(std::make_shared<MessageEndpointsRule>());
    r.add(std::make_shared<MessagePairingRule>());
    r.add(std::make_shared<DefinitionIntegrityRule>());
    r.add(std::make_shared<SyncCoverageRule>());
    r.add(std::make_shared<DominantEligibilityRule>());
    r.add(std::make_shared<SegmentSkewRule>());
    r.add(std::make_shared<ZeroDurationRule>());
    r.add(std::make_shared<QuarantineInteractionRule>());
    // The dependency-graph detectors append at the end: registry order is
    // part of the determinism contract, so new rules never reorder
    // existing findings.
    r.add(std::make_shared<CriticalPathDominatedRankRule>());
    r.add(std::make_shared<SerializationBottleneckRule>());
    r.add(std::make_shared<IdleWavePropagationRule>());
    return r;
  }();
  return registry;
}

}  // namespace perfvar::lint
