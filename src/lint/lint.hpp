#ifndef PERFVAR_LINT_LINT_HPP
#define PERFVAR_LINT_LINT_HPP

/// \file lint.hpp
/// Rule-based static analysis of traces ("perfvar::lint").
///
/// The analysis pipeline silently assumes well-formed inputs: monotone
/// clocks, balanced enter/leave stacks, classifiable synchronization
/// regions, and a dominant function invoked at least 2p times (paper
/// Sections IV-V). A trace violating these either throws mid-pipeline or
/// produces quietly wrong SOS-times. lintTrace() diagnoses such
/// pathologies up front: an extensible set of rules (stable kebab-case
/// ids, Error/Warning/Info severities) runs over the trace and returns
/// every finding as a LintReport.
///
/// Rules come in two flavors. Per-rank checks (Rule::checkProcess) run
/// over each process stream and are sharded across a util::ThreadPool
/// when LintOptions::threads != 1; whole-trace checks (Rule::checkTrace)
/// run serially on the calling thread afterwards. Findings are merged
/// deterministically — per-rank findings in ascending rank order, each
/// rank's findings sorted by event index (ties in registry order), global
/// findings appended in registry order — so the report is byte-identical
/// for every thread count (the same discipline as analyzeTrace, see
/// analysis/parallel.hpp).
///
/// Robustness contract: lintTrace() never throws on hostile trace
/// content. Every rule invocation is guarded; a rule that throws is
/// reported as a finding on the rule itself instead of propagating.
///
/// trace::validate() is subsumed: it forwards to this engine with the
/// five structural rules enabled and returns the identical issues the
/// historical single-pass implementation produced.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/depgraph.hpp"
#include "analysis/dominant.hpp"
#include "analysis/export.hpp"
#include "analysis/sync.hpp"
#include "profile/profile.hpp"
#include "trace/trace.hpp"
#include "trace/view.hpp"

namespace perfvar::util {
class ThreadPool;
}

namespace perfvar::lint {

/// Severity of one finding; ordered (Info < Warning < Error).
enum class Severity : std::uint8_t {
  Info = 0,     ///< stylistic / informational (analysis still sound)
  Warning = 1,  ///< analysis runs but results may mislead
  Error = 2,    ///< structural damage; the pipeline will throw or lie
};

/// Stable lowercase name of a severity ("info", "warning", "error").
const char* severityName(Severity s);

/// Parse a severityName(); throws perfvar::Error for unknown names.
Severity severityFromName(const std::string& name);

/// One problem found by a lint rule.
struct Finding {
  std::string rule;     ///< stable kebab-case rule id
  Severity severity = Severity::Warning;
  std::int64_t process = -1;     ///< failing process, -1 = whole trace
  std::int64_t eventIndex = -1;  ///< event in the process stream, -1 = none
  std::string message;

  bool operator==(const Finding& other) const = default;
};

/// Options of lintTrace().
struct LintOptions {
  /// Worker threads of the per-rank rule phase: 1 (default) runs inline,
  /// 0 = hardware concurrency. The report is byte-identical for every
  /// value (see the determinism note in the file comment).
  std::size_t threads = 1;
  /// Ranks per pool task when threads != 1. No effect on the report.
  std::size_t grainSizeRanks = 1;
  /// Optional external pool; overrides `threads` when set.
  util::ThreadPool* pool = nullptr;

  /// Per-rule-ID suppression: rules whose id appears here are skipped.
  std::vector<std::string> disabledRules;
  /// When non-empty, run only these rule ids (still minus disabledRules).
  std::vector<std::string> onlyRules;
  /// Findings below this severity are dropped at the source.
  Severity minSeverity = Severity::Info;
  /// Keep at most this many findings per rule (in report order); the
  /// overflow count is recorded in LintReport::truncated. 0 = unlimited.
  std::size_t maxFindingsPerRule = 1000;

  /// The `2` of the paper's ">= 2p invocations" dominant-function bound
  /// (dominant-eligibility rule).
  std::uint64_t invocationMultiplier = 2;
  /// Classifier the SOS pipeline will use (sync-coverage and
  /// dominant-eligibility rules; also the dependency-graph rules' notion
  /// of a wait region).
  analysis::SyncClassifier sync{};

  /// Thresholds of the serialization-bottleneck / critical-path-dominance
  /// rules (see analysis/depgraph.hpp).
  analysis::SerializationOptions serialization{};
  /// Thresholds of the idle-wave-propagation rule.
  analysis::IdleWaveOptions idleWave{};
};

/// A rule that produced more findings than LintOptions::maxFindingsPerRule.
struct TruncatedRule {
  std::string rule;
  std::uint64_t dropped = 0;

  bool operator==(const TruncatedRule& other) const = default;
};

/// Complete result of one lintTrace() run.
struct LintReport {
  std::vector<Finding> findings;       ///< deterministic report order
  std::vector<std::string> rulesRun;   ///< executed rule ids, registry order
  std::vector<TruncatedRule> truncated;
  std::size_t processCount = 0;

  bool clean() const { return findings.empty(); }
  /// Number of findings of exactly severity `s`.
  std::size_t count(Severity s) const;
  /// Number of findings of severity `s` or worse.
  std::size_t countAtLeast(Severity s) const;
  bool hasAtLeast(Severity s) const { return countAtLeast(s) > 0; }
};

class RuleContext;

/// Destination for a rule's findings. The engine constructs one sink per
/// (rule, process) in the per-rank phase and one per rule in the global
/// phase; the sink applies LintOptions::minSeverity filtering.
class Sink {
public:
  Sink(std::string ruleId, std::int64_t process, Severity minSeverity,
       std::vector<Finding>& out)
      : ruleId_(std::move(ruleId)),
        process_(process),
        minSeverity_(minSeverity),
        out_(out) {}

  /// Finding tied to one event of this sink's process.
  void reportAt(Severity severity, std::size_t eventIndex,
                std::string message);
  /// Finding about this sink's whole process (whole trace in the global
  /// phase).
  void report(Severity severity, std::string message);
  /// Finding about a specific process; for global-phase rules that blame
  /// individual ranks (e.g. quarantine-interaction).
  void reportProcess(Severity severity, trace::ProcessId process,
                     std::string message);

private:
  std::string ruleId_;
  std::int64_t process_;
  Severity minSeverity_;
  std::vector<Finding>& out_;
};

/// One diagnostic rule. Implementations must be stateless const objects:
/// checkProcess() is called concurrently for distinct ranks.
class Rule {
public:
  virtual ~Rule() = default;

  /// Stable kebab-case identifier (lowercase letters, digits, '-').
  virtual std::string_view id() const = 0;
  /// One-line description (the docs/LINT.md reference table).
  virtual std::string_view description() const = 0;

  /// Per-rank check over one process stream. Called concurrently for
  /// different ranks; must not touch shared mutable state and must not
  /// use the RuleContext's lazily-built stages (profileOrNull etc.).
  virtual void checkProcess(const RuleContext& context, trace::ProcessId p,
                            Sink& sink) const;
  /// Whole-trace check; runs serially after the per-rank phase and may
  /// use every RuleContext helper.
  virtual void checkTrace(const RuleContext& context, Sink& sink) const;
};

/// Shared state handed to rules. The lazily-built stages (analysis view,
/// profile, dominant ranking) are for the serial global phase only.
class RuleContext {
public:
  RuleContext(const trace::TraceView& trace, const LintOptions& options);
  ~RuleContext();

  RuleContext(const RuleContext&) = delete;
  RuleContext& operator=(const RuleContext&) = delete;

  const trace::TraceView& trace() const { return view_; }
  const LintOptions& options() const { return options_; }

  /// The trace the analysis pipeline would run on: the dropQuarantined
  /// view for degraded inputs, trace() itself otherwise. Null when every
  /// rank is quarantined (nothing analyzable). Global phase only.
  const trace::TraceView* analysisTrace() const;
  /// Flat profile of analysisTrace(), or null when it cannot be built
  /// (malformed streams, fully-quarantined trace). Global phase only.
  const profile::FlatProfile* profileOrNull() const;
  /// Dominant ranking under options() on analysisTrace(), or null when
  /// the profile is unavailable. Global phase only.
  const analysis::DominantSelection* dominantOrNull() const;
  /// Cross-rank dependency analysis (critical path, serialization,
  /// idle waves) of analysisTrace() under options(), built once and
  /// shared by the three dependency rules. Null when there is no
  /// analyzable trace. Global phase only.
  const analysis::DepAnalysis* depAnalysisOrNull() const;

private:
  trace::TraceView view_;
  const LintOptions& options_;
  mutable bool analysisTraceComputed_ = false;
  mutable trace::TraceView filteredView_;
  mutable const trace::TraceView* analysisTrace_ = nullptr;
  mutable bool profileComputed_ = false;
  mutable std::unique_ptr<profile::FlatProfile> profile_;
  mutable bool dominantComputed_ = false;
  mutable std::unique_ptr<analysis::DominantSelection> dominant_;
  mutable bool depAnalysisComputed_ = false;
  mutable std::unique_ptr<analysis::DepAnalysis> depAnalysis_;
};

/// Ordered collection of rules. Copy RuleRegistry::builtin() and add()
/// custom rules to extend the engine; registry order is report order for
/// tied findings, so it is part of the determinism contract.
class RuleRegistry {
public:
  RuleRegistry() = default;

  /// Register a rule; its id must be unique, non-empty kebab-case.
  void add(std::shared_ptr<const Rule> rule);

  /// Rule by id, or null.
  const Rule* find(std::string_view id) const;

  const std::vector<std::shared_ptr<const Rule>>& rules() const {
    return rules_;
  }

  /// The built-in rules (see docs/LINT.md for the reference table), in
  /// their fixed registry order.
  static const RuleRegistry& builtin();

private:
  std::vector<std::shared_ptr<const Rule>> rules_;
};

/// Run every enabled rule of `registry` over `trace`. Never throws on
/// trace *content*; throws perfvar::Error only for caller mistakes
/// (unknown rule ids in onlyRules/disabledRules are reported as Info
/// findings, not errors, so suppression lists stay forward-compatible).
LintReport lintTrace(const trace::TraceView& trace, const LintOptions& options = {},
                     const RuleRegistry& registry = RuleRegistry::builtin());
LintReport lintTrace(trace::Trace&&, const LintOptions& = {},
                     const RuleRegistry& = RuleRegistry::builtin()) = delete;

/// Human-readable report: one line per finding plus a summary footer.
/// Deterministic byte-for-byte function of the report.
std::string formatLintReport(const LintReport& report);

/// Render a lint report through the unified export path. Supported
/// formats: Text (formatLintReport), Json, Csv (one row per finding);
/// the analysis-specific CSV variants throw.
void exportLintReport(const LintReport& report, analysis::ExportFormat format,
                      std::ostream& out);

/// Convenience string wrapper.
std::string exportLintReportString(const LintReport& report,
                                   analysis::ExportFormat format);

/// One problem found by validateStructure().
struct ValidationIssue {
  trace::ProcessId process = 0;
  std::size_t eventIndex = 0;  ///< index into the process event stream
  std::string message;
};

/// Structural validation: runs exactly the five structural rules
/// (clock-monotonicity, stack-balance, undefined-function-ref,
/// undefined-metric-ref, message-endpoints) and returns every finding as
/// a ValidationIssue (empty == valid). This is the successor of the
/// removed trace::validate(), with identical issue order and messages.
std::vector<ValidationIssue> validateStructure(const trace::TraceView& trace);
std::vector<ValidationIssue> validateStructure(trace::Trace&&) = delete;

/// Convenience: throws perfvar::Error listing the first issues when the
/// trace is not structurally valid (successor of trace::requireValid()).
void requireStructurallyValid(const trace::TraceView& trace);
void requireStructurallyValid(trace::Trace&&) = delete;

}  // namespace perfvar::lint

#endif  // PERFVAR_LINT_LINT_HPP
