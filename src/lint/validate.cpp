/// \file validate.cpp
/// lint::validateStructure() / lint::requireStructurallyValid(): the
/// structural-validation conveniences, implemented on the lint engine.
/// They run exactly the five structural rules the historical single-pass
/// trace::validate() implemented (now gone after its deprecation cycle)
/// and return issues with identical order and messages.

#include <algorithm>
#include <sstream>

#include "lint/lint.hpp"
#include "util/error.hpp"

namespace perfvar::lint {

namespace {

/// The lint rules equivalent to the historical validate() checks, in the
/// builtin registry order (clock before the structural rules, matching the
/// old loop that tested the timestamp before the event kind).
LintOptions validateOptions() {
  LintOptions options;
  options.onlyRules = {"clock-monotonicity", "stack-balance",
                       "undefined-function-ref", "undefined-metric-ref",
                       "message-endpoints"};
  options.minSeverity = Severity::Info;
  options.maxFindingsPerRule = 0;  // structural validation never truncates
  return options;
}

}  // namespace

std::vector<ValidationIssue> validateStructure(const trace::TraceView& trace) {
  const LintReport report = lintTrace(trace, validateOptions());
  std::vector<ValidationIssue> issues;
  issues.reserve(report.findings.size());
  for (const Finding& f : report.findings) {
    issues.push_back(ValidationIssue{
        static_cast<trace::ProcessId>(f.process),
        static_cast<std::size_t>(f.eventIndex), f.message});
  }
  return issues;
}

void requireStructurallyValid(const trace::TraceView& trace) {
  const auto issues = validateStructure(trace);
  if (issues.empty()) {
    return;
  }
  std::ostringstream os;
  os << "invalid trace (" << issues.size() << " issue(s)):";
  const std::size_t shown = std::min<std::size_t>(issues.size(), 5);
  for (std::size_t i = 0; i < shown; ++i) {
    os << "\n  process " << issues[i].process << ", event "
       << issues[i].eventIndex << ": " << issues[i].message;
  }
  if (issues.size() > shown) {
    os << "\n  ...";
  }
  ErrorContext context;
  context.code = ErrorCode::MalformedEvent;
  context.rank = static_cast<std::int64_t>(issues.front().process);
  throw Error(os.str(), std::move(context));
}

}  // namespace perfvar::lint
