/// \file validate.cpp
/// trace::validate() / trace::requireValid(), reimplemented on top of the
/// lint engine (declared in trace/trace.hpp, defined here so the trace
/// library does not depend on lint). The forwarder runs exactly the five
/// structural rules the historical single-pass validator implemented and
/// returns issues with identical order and messages.

#include <algorithm>
#include <sstream>

#include "lint/lint.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace perfvar::trace {

namespace {

/// The lint rules equivalent to the historical validate() checks, in the
/// builtin registry order (clock before the structural rules, matching the
/// old loop that tested the timestamp before the event kind).
lint::LintOptions validateOptions() {
  lint::LintOptions options;
  options.onlyRules = {"clock-monotonicity", "stack-balance",
                       "undefined-function-ref", "undefined-metric-ref",
                       "message-endpoints"};
  options.minSeverity = lint::Severity::Info;
  options.maxFindingsPerRule = 0;  // validate() never truncated
  return options;
}

}  // namespace

std::vector<ValidationIssue> validate(const Trace& trace) {
  const lint::LintReport report = lint::lintTrace(trace, validateOptions());
  std::vector<ValidationIssue> issues;
  issues.reserve(report.findings.size());
  for (const lint::Finding& f : report.findings) {
    issues.push_back(ValidationIssue{
        static_cast<ProcessId>(f.process),
        static_cast<std::size_t>(f.eventIndex), f.message});
  }
  return issues;
}

void requireValid(const Trace& trace) {
  const auto issues = validate(trace);
  if (issues.empty()) {
    return;
  }
  std::ostringstream os;
  os << "invalid trace (" << issues.size() << " issue(s)):";
  const std::size_t shown = std::min<std::size_t>(issues.size(), 5);
  for (std::size_t i = 0; i < shown; ++i) {
    os << "\n  process " << issues[i].process << ", event "
       << issues[i].eventIndex << ": " << issues[i].message;
  }
  if (issues.size() > shown) {
    os << "\n  ...";
  }
  ErrorContext context;
  context.code = ErrorCode::MalformedEvent;
  context.rank = static_cast<std::int64_t>(issues.front().process);
  throw Error(os.str(), std::move(context));
}

}  // namespace perfvar::trace
