#include "balance/hilbert.hpp"

#include "util/error.hpp"

namespace perfvar::balance {

HilbertCurve::HilbertCurve(unsigned order) : order_(order) {
  PERFVAR_REQUIRE(order >= 1 && order <= 15,
                  "hilbert order must be in [1, 15]");
  side_ = 1u << order;
}

std::uint64_t HilbertCurve::toIndex(std::uint32_t x, std::uint32_t y) const {
  PERFVAR_REQUIRE(x < side_ && y < side_, "hilbert cell out of range");
  std::uint64_t d = 0;
  for (std::uint32_t s = side_ / 2; s > 0; s /= 2) {
    const std::uint32_t rx = (x & s) ? 1 : 0;
    const std::uint32_t ry = (y & s) ? 1 : 0;
    d += static_cast<std::uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

std::pair<std::uint32_t, std::uint32_t> HilbertCurve::toXY(
    std::uint64_t index) const {
  PERFVAR_REQUIRE(index < cells(), "hilbert index out of range");
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint64_t t = index;
  for (std::uint32_t s = 1; s < side_; s *= 2) {
    const std::uint32_t rx = static_cast<std::uint32_t>((t / 2) & 1);
    const std::uint32_t ry = static_cast<std::uint32_t>((t ^ rx) & 1);
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
  return {x, y};
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> HilbertCurve::traversal()
    const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;
  order.reserve(static_cast<std::size_t>(cells()));
  for (std::uint64_t i = 0; i < cells(); ++i) {
    order.push_back(toXY(i));
  }
  return order;
}

unsigned hilbertOrderFor(std::uint32_t side) {
  PERFVAR_REQUIRE(side >= 1, "side must be positive");
  unsigned order = 1;
  while ((1u << order) < side) {
    ++order;
  }
  PERFVAR_REQUIRE(order <= 15, "side too large for hilbert curve");
  return order;
}

}  // namespace perfvar::balance
