#include "balance/partition.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace perfvar::balance {

std::size_t ChainPartition::ownerOf(std::size_t i) const {
  PERFVAR_REQUIRE(!cuts.empty() && i < cuts.back(), "item out of range");
  // First cut strictly greater than i, minus one.
  const auto it = std::upper_bound(cuts.begin(), cuts.end(), i);
  return static_cast<std::size_t>(it - cuts.begin()) - 1;
}

double ChainPartition::bottleneck(std::span<const double> weights) const {
  double worst = 0.0;
  for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
    double sum = 0.0;
    for (std::size_t i = cuts[k]; i < cuts[k + 1]; ++i) {
      sum += weights[i];
    }
    worst = std::max(worst, sum);
  }
  return worst;
}

std::vector<std::size_t> ChainPartition::owners(std::size_t n) const {
  PERFVAR_REQUIRE(!cuts.empty() && cuts.back() == n,
                  "partition does not cover n items");
  std::vector<std::size_t> out(n, 0);
  for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
    for (std::size_t i = cuts[k]; i < cuts[k + 1]; ++i) {
      out[i] = k;
    }
  }
  return out;
}

namespace {

void checkInputs(std::span<const double> weights, std::size_t parts) {
  PERFVAR_REQUIRE(parts >= 1, "parts must be positive");
  for (const double w : weights) {
    PERFVAR_REQUIRE(w >= 0.0, "weights must be non-negative");
  }
}

/// Greedy probe: can the chain be split into <= parts ranges each with
/// sum <= limit? Fills `cuts` when feasible.
bool probe(std::span<const double> weights, std::size_t parts, double limit,
           std::vector<std::size_t>* cuts) {
  if (cuts != nullptr) {
    cuts->clear();
    cuts->push_back(0);
  }
  std::size_t used = 1;
  double sum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > limit) {
      return false;  // single item exceeds the limit
    }
    if (sum + weights[i] > limit) {
      ++used;
      if (used > parts) {
        return false;
      }
      if (cuts != nullptr) {
        cuts->push_back(i);
      }
      sum = 0.0;
    }
    sum += weights[i];
  }
  if (cuts != nullptr) {
    while (cuts->size() < parts) {
      cuts->push_back(weights.size());
    }
    cuts->push_back(weights.size());
  }
  return true;
}

}  // namespace

ChainPartition partitionGreedy(std::span<const double> weights,
                               std::size_t parts) {
  checkInputs(weights, parts);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  const double target = total / static_cast<double>(parts);

  ChainPartition p;
  p.cuts.push_back(0);
  double sum = 0.0;
  std::size_t cutsLeft = parts - 1;
  for (std::size_t i = 0; i < weights.size() && cutsLeft > 0; ++i) {
    sum += weights[i];
    // Cut after item i if we reached the target, but keep enough items
    // for the remaining parts to be non-empty where possible.
    const std::size_t remainingItems = weights.size() - (i + 1);
    if ((sum >= target && remainingItems >= cutsLeft) ||
        remainingItems == cutsLeft) {
      p.cuts.push_back(i + 1);
      --cutsLeft;
      sum = 0.0;
    }
  }
  while (p.cuts.size() < parts + 1) {
    p.cuts.push_back(weights.size());
  }
  return p;
}

ChainPartition partitionOptimal(std::span<const double> weights,
                                std::size_t parts) {
  checkInputs(weights, parts);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  double lo = 0.0;
  for (const double w : weights) {
    lo = std::max(lo, w);
  }
  double hi = std::max(total, lo);

  // Binary search the bottleneck to a tight relative tolerance, then
  // build the cuts with the final feasible limit.
  const double eps = std::max(1e-12, 1e-9 * hi);
  for (int iter = 0; iter < 200 && hi - lo > eps; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (probe(weights, parts, mid, nullptr)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  ChainPartition p;
  const bool ok = probe(weights, parts, hi, &p.cuts);
  PERFVAR_ASSERT(ok, "optimal partition probe failed at final limit");
  return p;
}

double partitionImbalance(const ChainPartition& partition,
                          std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    return 0.0;
  }
  const double ideal = total / static_cast<double>(partition.parts());
  return partition.bottleneck(weights) / ideal - 1.0;
}

std::size_t migrationCount(const ChainPartition& before,
                           const ChainPartition& after, std::size_t n) {
  const auto a = before.owners(n);
  const auto b = after.owners(n);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      ++moved;
    }
  }
  return moved;
}

}  // namespace perfvar::balance
