#ifndef PERFVAR_BALANCE_HILBERT_HPP
#define PERFVAR_BALANCE_HILBERT_HPP

/// \file hilbert.hpp
/// Hilbert space-filling curve on a 2^order x 2^order grid.
///
/// FD4 (Lieber et al., PARA 2010) orders grid blocks along a space-filling
/// curve so that contiguous curve ranges form spatially compact, cheap-to-
/// migrate partitions. This is the same device used here by Fd4Balancer.

#include <cstdint>
#include <utility>
#include <vector>

namespace perfvar::balance {

/// Hilbert curve of a fixed order (grid side = 2^order).
class HilbertCurve {
public:
  /// order in [1, 15] (side up to 32768).
  explicit HilbertCurve(unsigned order);

  unsigned order() const { return order_; }
  std::uint32_t side() const { return side_; }
  std::uint64_t cells() const {
    return static_cast<std::uint64_t>(side_) * side_;
  }

  /// Curve index of cell (x, y); x and y must be < side().
  std::uint64_t toIndex(std::uint32_t x, std::uint32_t y) const;

  /// Cell coordinates of a curve index; index must be < cells().
  std::pair<std::uint32_t, std::uint32_t> toXY(std::uint64_t index) const;

  /// The full traversal order: result[i] = (x, y) of curve position i.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> traversal() const;

private:
  unsigned order_;
  std::uint32_t side_;
};

/// Smallest order whose grid side covers `side` cells.
unsigned hilbertOrderFor(std::uint32_t side);

}  // namespace perfvar::balance

#endif  // PERFVAR_BALANCE_HILBERT_HPP
