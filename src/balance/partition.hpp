#ifndef PERFVAR_BALANCE_PARTITION_HPP
#define PERFVAR_BALANCE_PARTITION_HPP

/// \file partition.hpp
/// 1-D chain partitioning: split a weight sequence into `parts` contiguous
/// ranges minimizing the maximum range sum (the classic load-balancing
/// kernel behind SFC-based balancers like FD4).

#include <cstddef>
#include <span>
#include <vector>

namespace perfvar::balance {

/// A contiguous partition described by cut points:
/// part k owns indices [cuts[k], cuts[k+1]). cuts.size() == parts + 1,
/// cuts.front() == 0, cuts.back() == n. Empty parts are allowed.
struct ChainPartition {
  std::vector<std::size_t> cuts;

  std::size_t parts() const { return cuts.empty() ? 0 : cuts.size() - 1; }
  std::size_t begin(std::size_t part) const { return cuts[part]; }
  std::size_t end(std::size_t part) const { return cuts[part + 1]; }

  /// Owner part of item `i`.
  std::size_t ownerOf(std::size_t i) const;

  /// Maximum part weight under `weights`.
  double bottleneck(std::span<const double> weights) const;

  /// Dense owner array: owner[i] = part of item i.
  std::vector<std::size_t> owners(std::size_t n) const;
};

/// Greedy heuristic: walk the chain, cutting when the running sum exceeds
/// the ideal average. O(n). Good but not optimal.
ChainPartition partitionGreedy(std::span<const double> weights,
                               std::size_t parts);

/// Optimal min-max partition via binary search on the bottleneck value
/// with a greedy feasibility probe. O(n log(sum/epsilon)).
ChainPartition partitionOptimal(std::span<const double> weights,
                                std::size_t parts);

/// Load imbalance lambda = maxPartWeight / idealAverage - 1 of a
/// partition (0 = perfect).
double partitionImbalance(const ChainPartition& partition,
                          std::span<const double> weights);

/// Number of items whose owner differs between two partitions of the same
/// chain (the migration volume of a rebalancing step).
std::size_t migrationCount(const ChainPartition& before,
                           const ChainPartition& after, std::size_t n);

}  // namespace perfvar::balance

#endif  // PERFVAR_BALANCE_PARTITION_HPP
