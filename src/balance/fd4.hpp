#ifndef PERFVAR_BALANCE_FD4_HPP
#define PERFVAR_BALANCE_FD4_HPP

/// \file fd4.hpp
/// FD4-style dynamic load balancer for 2-D block grids.
///
/// Models the "Four-Dimensional Distributed Dynamic Data structures"
/// balancer the paper's second case study uses (COSMO-SPECS+FD4, Lieber
/// et al.): grid blocks are ordered along a Hilbert space-filling curve
/// and the curve is re-partitioned into contiguous rank ranges whenever
/// the measured block weights drift out of balance. Hysteresis avoids
/// rebalancing on every step; the balancer reports the migration volume
/// of each step.

#include <cstdint>
#include <span>
#include <vector>

#include "balance/hilbert.hpp"
#include "balance/partition.hpp"

namespace perfvar::balance {

/// Options of the FD4-style balancer.
struct Fd4Options {
  /// Rebalance when the current imbalance lambda exceeds this threshold.
  double imbalanceThreshold = 0.05;
  /// Use the optimal min-max partitioner (greedy otherwise).
  bool optimalPartition = true;
};

/// Result of one balancing step.
struct Fd4StepResult {
  bool rebalanced = false;
  double imbalanceBefore = 0.0;
  double imbalanceAfter = 0.0;
  std::size_t migratedBlocks = 0;
};

/// Dynamic balancer of a blocksX x blocksY grid over `ranks` ranks.
class Fd4Balancer {
public:
  Fd4Balancer(std::uint32_t blocksX, std::uint32_t blocksY, std::size_t ranks,
              Fd4Options options = {});

  std::size_t ranks() const { return ranks_; }
  std::size_t blockCount() const { return curveOrderOfBlock_.size(); }

  /// Curve position of grid block (bx, by).
  std::size_t curveIndex(std::uint32_t bx, std::uint32_t by) const;

  /// Current owner rank of grid block (bx, by).
  std::size_t ownerOf(std::uint32_t bx, std::uint32_t by) const;

  /// Blocks currently owned by `rank`, as linear block ids (by * X + bx).
  std::vector<std::size_t> blocksOf(std::size_t rank) const;

  /// Update with measured per-block weights (indexed linearly, by*X+bx)
  /// and rebalance if the imbalance threshold is exceeded.
  Fd4StepResult update(std::span<const double> blockWeights);

  /// Current per-rank total weight under the given block weights.
  std::vector<double> rankLoads(std::span<const double> blockWeights) const;

  /// Current imbalance lambda under the given block weights.
  double imbalance(std::span<const double> blockWeights) const;

private:
  std::vector<double> curveWeights(std::span<const double> blockWeights) const;

  std::uint32_t blocksX_;
  std::uint32_t blocksY_;
  std::size_t ranks_;
  Fd4Options options_;
  /// curve position -> linear block id, and the inverse.
  std::vector<std::size_t> blockAtCurvePos_;
  std::vector<std::size_t> curveOrderOfBlock_;
  ChainPartition partition_;  ///< over curve positions
};

}  // namespace perfvar::balance

#endif  // PERFVAR_BALANCE_FD4_HPP
