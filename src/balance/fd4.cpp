#include "balance/fd4.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace perfvar::balance {

Fd4Balancer::Fd4Balancer(std::uint32_t blocksX, std::uint32_t blocksY,
                         std::size_t ranks, Fd4Options options)
    : blocksX_(blocksX),
      blocksY_(blocksY),
      ranks_(ranks),
      options_(options) {
  PERFVAR_REQUIRE(blocksX >= 1 && blocksY >= 1, "grid must be non-empty");
  PERFVAR_REQUIRE(ranks >= 1, "need at least one rank");
  const std::size_t nBlocks =
      static_cast<std::size_t>(blocksX) * static_cast<std::size_t>(blocksY);
  PERFVAR_REQUIRE(nBlocks >= ranks,
                  "need at least one block per rank");

  // Order blocks along a Hilbert curve over the covering power-of-two
  // grid, skipping curve cells outside the actual block grid.
  const HilbertCurve curve(hilbertOrderFor(std::max(blocksX, blocksY)));
  blockAtCurvePos_.reserve(nBlocks);
  curveOrderOfBlock_.assign(nBlocks, 0);
  for (std::uint64_t i = 0; i < curve.cells(); ++i) {
    const auto [x, y] = curve.toXY(i);
    if (x < blocksX && y < blocksY) {
      const std::size_t blockId =
          static_cast<std::size_t>(y) * blocksX + x;
      curveOrderOfBlock_[blockId] = blockAtCurvePos_.size();
      blockAtCurvePos_.push_back(blockId);
    }
  }
  PERFVAR_ASSERT(blockAtCurvePos_.size() == nBlocks,
                 "curve does not cover the block grid");

  // Initial partition: uniform weights.
  const std::vector<double> uniform(nBlocks, 1.0);
  partition_ = partitionOptimal(uniform, ranks_);
}

std::size_t Fd4Balancer::curveIndex(std::uint32_t bx, std::uint32_t by) const {
  PERFVAR_REQUIRE(bx < blocksX_ && by < blocksY_, "block out of range");
  return curveOrderOfBlock_[static_cast<std::size_t>(by) * blocksX_ + bx];
}

std::size_t Fd4Balancer::ownerOf(std::uint32_t bx, std::uint32_t by) const {
  return partition_.ownerOf(curveIndex(bx, by));
}

std::vector<std::size_t> Fd4Balancer::blocksOf(std::size_t rank) const {
  PERFVAR_REQUIRE(rank < ranks_, "invalid rank");
  std::vector<std::size_t> blocks;
  for (std::size_t pos = partition_.begin(rank); pos < partition_.end(rank);
       ++pos) {
    blocks.push_back(blockAtCurvePos_[pos]);
  }
  return blocks;
}

std::vector<double> Fd4Balancer::curveWeights(
    std::span<const double> blockWeights) const {
  PERFVAR_REQUIRE(blockWeights.size() == blockAtCurvePos_.size(),
                  "weight count must equal block count");
  std::vector<double> w(blockWeights.size());
  for (std::size_t pos = 0; pos < blockAtCurvePos_.size(); ++pos) {
    w[pos] = blockWeights[blockAtCurvePos_[pos]];
  }
  return w;
}

Fd4StepResult Fd4Balancer::update(std::span<const double> blockWeights) {
  const std::vector<double> w = curveWeights(blockWeights);
  Fd4StepResult result;
  result.imbalanceBefore = partitionImbalance(partition_, w);
  result.imbalanceAfter = result.imbalanceBefore;
  if (result.imbalanceBefore <= options_.imbalanceThreshold) {
    return result;
  }
  const ChainPartition next = options_.optimalPartition
                                  ? partitionOptimal(w, ranks_)
                                  : partitionGreedy(w, ranks_);
  result.migratedBlocks = migrationCount(partition_, next, w.size());
  partition_ = next;
  result.rebalanced = true;
  result.imbalanceAfter = partitionImbalance(partition_, w);
  return result;
}

std::vector<double> Fd4Balancer::rankLoads(
    std::span<const double> blockWeights) const {
  const std::vector<double> w = curveWeights(blockWeights);
  std::vector<double> loads(ranks_, 0.0);
  for (std::size_t rank = 0; rank < ranks_; ++rank) {
    for (std::size_t pos = partition_.begin(rank);
         pos < partition_.end(rank); ++pos) {
      loads[rank] += w[pos];
    }
  }
  return loads;
}

double Fd4Balancer::imbalance(std::span<const double> blockWeights) const {
  return partitionImbalance(partition_, curveWeights(blockWeights));
}

}  // namespace perfvar::balance
