#ifndef PERFVAR_UTIL_MMAP_FILE_HPP
#define PERFVAR_UTIL_MMAP_FILE_HPP

/// \file mmap_file.hpp
/// Read-only whole-file views for the zero-copy trace loaders.
///
/// FileView presents a file as one contiguous byte range. On POSIX it
/// memory-maps the file (the kernel pages data in on demand and the
/// caller decodes straight out of the mapping, no user-space copy); on
/// platforms without mmap — or when mapping fails or is disabled — it
/// falls back to a single buffered read into an owned buffer. Callers
/// never need to distinguish the two beyond mapped() telemetry.

#include <cstddef>
#include <string>
#include <vector>

namespace perfvar::util {

/// Immutable view of a whole file, memory-mapped when possible.
/// Move-only; the view (and with it the mapping) lives as long as the
/// object.
class FileView {
public:
  /// Open `path` read-only. With allowMmap the file is memory-mapped if
  /// the platform supports it; otherwise (or on any mapping failure) the
  /// whole file is read into an internal buffer. Throws perfvar::Error if
  /// the file cannot be opened or read.
  static FileView open(const std::string& path, bool allowMmap = true);

  FileView() = default;
  ~FileView();

  FileView(FileView&& other) noexcept;
  FileView& operator=(FileView&& other) noexcept;
  FileView(const FileView&) = delete;
  FileView& operator=(const FileView&) = delete;

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  /// True when the view is a live memory mapping (vs an owned buffer).
  bool mapped() const { return mappedBase_ != nullptr; }

private:
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  void* mappedBase_ = nullptr;  ///< munmap target when mapped
  std::vector<unsigned char> buffer_;  ///< fallback storage
};

}  // namespace perfvar::util

#endif  // PERFVAR_UTIL_MMAP_FILE_HPP
