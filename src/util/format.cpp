#include "util/format.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace perfvar::fmt {

std::string fixed(double v, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

std::string seconds(double s) {
  const double a = std::abs(s);
  if (a < 1e-6) {
    return fixed(s * 1e9, 1) + " ns";
  }
  if (a < 1e-3) {
    return fixed(s * 1e6, 2) + " us";
  }
  if (a < 1.0) {
    return fixed(s * 1e3, 2) + " ms";
  }
  return fixed(s, 3) + " s";
}

std::string bytes(std::uint64_t n) {
  const double d = static_cast<double>(n);
  if (n < (1ULL << 10)) {
    return std::to_string(n) + " B";
  }
  if (n < (1ULL << 20)) {
    return fixed(d / 1024.0, 1) + " KiB";
  }
  if (n < (1ULL << 30)) {
    return fixed(d / (1024.0 * 1024.0), 1) + " MiB";
  }
  return fixed(d / (1024.0 * 1024.0 * 1024.0), 2) + " GiB";
}

std::string percent(double ratio) {
  return fixed(ratio * 100.0, 1) + "%";
}

std::string join(std::span<const std::string> parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string pad(const std::string& s, int width) {
  const auto w = static_cast<std::size_t>(std::abs(width));
  if (s.size() >= w) {
    return s;
  }
  const std::string fill(w - s.size(), ' ');
  return width < 0 ? fill + s : s + fill;
}

std::string table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) {
    return {};
  }
  std::size_t cols = 0;
  for (const auto& r : rows) {
    cols = std::max(cols, r.size());
  }
  std::vector<std::size_t> widths(cols, 0);
  for (const auto& r : rows) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t c = 0; c < rows[i].size(); ++c) {
      os << pad(rows[i][c], static_cast<int>(widths[c]));
      if (c + 1 < rows[i].size()) {
        os << "  ";
      }
    }
    os << '\n';
    if (i == 0) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < cols; ++c) {
        total += widths[c] + (c + 1 < cols ? 2 : 0);
      }
      os << std::string(total, '-') << '\n';
    }
  }
  return os.str();
}

std::string sparkline(std::span<const double> values) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) {
    return {};
  }
  const auto [mnIt, mxIt] = std::minmax_element(values.begin(), values.end());
  const double mn = *mnIt;
  const double range = *mxIt - mn;
  std::string out;
  for (const double v : values) {
    int level = 0;
    if (range > 0.0) {
      level = static_cast<int>((v - mn) / range * 7.999);
      level = std::clamp(level, 0, 7);
    }
    out += kBlocks[level];
  }
  return out;
}

}  // namespace perfvar::fmt
