#include "util/socket.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <algorithm>
#include <csignal>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace perfvar::util {

namespace {

[[noreturn]] void throwIo(const std::string& what, const std::string& path = {}) {
  ErrorContext context;
  context.code = ErrorCode::IoFailure;
  context.path = path;
  throw Error(what + ": " + std::strerror(errno), std::move(context));
}

sockaddr_un unixAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PERFVAR_REQUIRE_E(path.size() < sizeof(addr.sun_path),
                    "socket path exceeds the sun_path limit: " + path,
                    ErrorContext::at(ErrorCode::IoFailure));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void FileDescriptor::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FileDescriptor listenUnix(const std::string& path, int backlog) {
  FileDescriptor fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throwIo("socket(AF_UNIX)", path);
  }
  const sockaddr_un addr = unixAddress(path);
  ::unlink(path.c_str());  // the daemon owns its socket path
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throwIo("bind", path);
  }
  if (::listen(fd.get(), backlog) != 0) {
    throwIo("listen", path);
  }
  return fd;
}

FileDescriptor acceptConnection(int listenFd) {
  while (true) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd >= 0) {
      return FileDescriptor(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    // shutdown(2) on the listening socket wakes accept with EINVAL (the
    // server's stop signal); a closed descriptor reports EBADF likewise.
    if (errno == EINVAL || errno == EBADF) {
      return FileDescriptor{};
    }
    throwIo("accept");
  }
}

FileDescriptor connectUnix(const std::string& path, std::size_t retries,
                           std::size_t retryIntervalMs) {
  const sockaddr_un addr = unixAddress(path);
  for (std::size_t attempt = 0;; ++attempt) {
    FileDescriptor fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
      throwIo("socket(AF_UNIX)", path);
    }
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (attempt >= retries) {
      throwIo("connect", path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(retryIntervalMs));
  }
}

FileDescriptor connectUnix(const std::string& path,
                           const ConnectRetryPolicy& policy) {
  const sockaddr_un addr = unixAddress(path);
  std::size_t delayMs = policy.initialDelayMs;
  for (std::size_t attempt = 0;; ++attempt) {
    FileDescriptor fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
      throwIo("socket(AF_UNIX)", path);
    }
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (attempt >= policy.retries) {
      throwIo("connect", path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
    delayMs = std::min(policy.maxDelayMs,
                       delayMs > 0 ? delayMs * 2 : std::size_t{1});
  }
}

std::pair<FileDescriptor, FileDescriptor> socketPair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throwIo("socketpair");
  }
  return {FileDescriptor(fds[0]), FileDescriptor(fds[1])};
}

bool readFull(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, p + done, n - done);
    if (got > 0) {
      done += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) {
      if (done == 0) {
        return false;  // clean EOF on a frame boundary
      }
      ErrorContext context;
      context.code = ErrorCode::TruncatedInput;
      context.byteOffset = done;
      throw Error("connection closed mid-read", std::move(context));
    }
    if (errno == EINTR) {
      continue;
    }
    throwIo("read");
  }
  return true;
}

void writeFull(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t put = ::write(fd, p + done, n - done);
    if (put > 0) {
      done += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) {
      continue;
    }
    throwIo("write");
  }
}

void suppressSigpipe() {
  // Idempotent and thread-safe enough for entry points: signal
  // disposition is process-global and SIG_IGN is the only value set.
  std::signal(SIGPIPE, SIG_IGN);
}

void shutdownSocket(int fd) {
  ::shutdown(fd, SHUT_RDWR);
}

void shutdownSocketRead(int fd) {
  ::shutdown(fd, SHUT_RD);
}

bool sendNonBlocking(int fd, const void* buf, std::size_t n,
                     std::size_t& written) noexcept {
  written = 0;
  while (true) {
    const ssize_t put =
        ::send(fd, buf, n, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (put >= 0) {
      written = static_cast<std::size_t>(put);
      return true;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;  // kernel buffer full: written stays 0
    }
    return false;
  }
}

bool pollWritable(int fd, int timeoutMs) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeoutMs);
  while (true) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int got = ::poll(&pfd, 1, timeoutMs);
    if (got > 0) {
      // POLLERR/POLLHUP also count as "writable": the next send reports
      // the definitive error, which is what the caller must act on.
      return true;
    }
    if (got == 0) {
      return false;
    }
    if (errno == EINTR) {
      if (timeoutMs >= 0) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
        timeoutMs = static_cast<int>(std::max<long long>(0, left.count()));
      }
      continue;
    }
    throwIo("poll");
  }
}

}  // namespace perfvar::util
