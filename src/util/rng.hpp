#ifndef PERFVAR_UTIL_RNG_HPP
#define PERFVAR_UTIL_RNG_HPP

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// All stochastic components of perfvar (noise models, synthetic workloads,
/// property-test input generation) draw from this xoshiro256** generator so
/// that every run is reproducible from a single 64-bit seed.

#include <cstdint>
#include <vector>

namespace perfvar {

/// xoshiro256** 1.0 by Blackman & Vigna, seeded via splitmix64.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions, though the member helpers below are the
/// preferred (and fully deterministic across platforms) interface.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64 random bits.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Box-Muller, both values used).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal multiplicative factor with median 1 and shape sigma:
  /// exp(sigma * N(0,1)). sigma = 0 yields exactly 1.
  double lognormalFactor(double sigma);

  /// Exponential deviate with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-rank streams).
  Rng split();

private:
  std::uint64_t s_[4];
  double cachedNormal_ = 0.0;
  bool hasCachedNormal_ = false;
};

}  // namespace perfvar

#endif  // PERFVAR_UTIL_RNG_HPP
