#ifndef PERFVAR_UTIL_JSON_WRITER_HPP
#define PERFVAR_UTIL_JSON_WRITER_HPP

/// \file json_writer.hpp
/// Minimal structured JSON writer shared by every JSON export path
/// (analysis reports, lint reports). No dependencies, deterministic
/// byte-for-byte output: numbers print with 17 significant digits so
/// doubles round-trip, non-finite values render as null.

#include <cstdint>
#include <ostream>
#include <string>

namespace perfvar::util {

/// JSON-escape a string (quotes, backslashes, control characters).
std::string jsonEscape(const std::string& s);

/// Streaming JSON writer. The caller is responsible for well-formedness
/// (matching begin/end calls, keys only inside objects); the writer only
/// handles separators and escaping.
class JsonWriter {
public:
  explicit JsonWriter(std::ostream& out) : out_(out) {
    out_.precision(17);
  }

  void beginObject() {
    separator();
    out_ << '{';
    fresh_ = true;
  }
  void endObject() {
    out_ << '}';
    fresh_ = false;
  }
  void beginArray() {
    separator();
    out_ << '[';
    fresh_ = true;
  }
  void endArray() {
    out_ << ']';
    fresh_ = false;
  }
  void key(const std::string& name) {
    separator();
    out_ << '"' << jsonEscape(name) << "\":";
    fresh_ = true;
  }
  void value(double v);
  void value(std::uint64_t v) {
    separator();
    out_ << v;
    fresh_ = false;
  }
  void value(std::int64_t v) {
    separator();
    out_ << v;
    fresh_ = false;
  }
  void value(const std::string& s) {
    separator();
    out_ << '"' << jsonEscape(s) << '"';
    fresh_ = false;
  }
  void value(bool b) {
    separator();
    out_ << (b ? "true" : "false");
    fresh_ = false;
  }

private:
  void separator() {
    if (!fresh_) {
      out_ << ',';
    }
    fresh_ = true;
  }

  std::ostream& out_;
  bool fresh_ = true;
};

}  // namespace perfvar::util

#endif  // PERFVAR_UTIL_JSON_WRITER_HPP
