#ifndef PERFVAR_UTIL_APPEND_FILE_HPP
#define PERFVAR_UTIL_APPEND_FILE_HPP

/// \file append_file.hpp
/// Durable append-only file writer.
///
/// The server's write-ahead journals (src/server/journal.hpp) need a
/// primitive the buffered iostream layer cannot give them: append a whole
/// record with a single write(2) on an O_APPEND descriptor — so records
/// from one writer land contiguously and a crash tears at most the final
/// record — and optionally fsync(2) before acknowledging. AppendFile is
/// that primitive, RAII-owned like the rest of util. Every failure throws
/// perfvar::Error with ErrorCode::IoFailure and the file path attached.

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/socket.hpp"  // FileDescriptor

namespace perfvar::util {

/// Move-only append-only file handle. Default-constructed instances are
/// invalid; obtain real ones from create() / openAppend().
class AppendFile {
public:
  AppendFile() = default;

  /// Create or truncate `path` for appending.
  static AppendFile create(const std::string& path);

  /// Open `path` for appending, creating it when absent and keeping
  /// existing contents.
  static AppendFile openAppend(const std::string& path);

  /// Append all `n` bytes with one write(2) call per retry window (EINTR
  /// and short writes are resumed). Throws Error(IoFailure) on failure.
  void append(const void* data, std::size_t n);

  /// fsync(2) the descriptor; throws Error(IoFailure) on failure.
  void sync();

  bool valid() const { return fd_.valid(); }
  const std::string& path() const { return path_; }

  /// Close now (idempotent, no implicit sync).
  void close() { fd_.close(); }

private:
  AppendFile(FileDescriptor fd, std::string path)
      : fd_(std::move(fd)), path_(std::move(path)) {}

  static AppendFile openWithFlags(const std::string& path, int flags);

  FileDescriptor fd_;
  std::string path_;
};

/// Truncate `path` to exactly `size` bytes (the torn-tail amputation step
/// of journal recovery). Throws Error(IoFailure) on failure.
void truncateFile(const std::string& path, std::uint64_t size);

}  // namespace perfvar::util

#endif  // PERFVAR_UTIL_APPEND_FILE_HPP
