#include "util/append_file.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace perfvar::util {

namespace {

[[noreturn]] void throwIo(const std::string& what, const std::string& path) {
  ErrorContext context;
  context.code = ErrorCode::IoFailure;
  context.path = path;
  throw Error(what + ": " + std::strerror(errno), std::move(context));
}

}  // namespace

AppendFile AppendFile::openWithFlags(const std::string& path, int flags) {
  while (true) {
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd >= 0) {
      return AppendFile{FileDescriptor(fd), path};
    }
    if (errno == EINTR) {
      continue;
    }
    throwIo("open", path);
  }
}

AppendFile AppendFile::create(const std::string& path) {
  return openWithFlags(path, O_WRONLY | O_CREAT | O_TRUNC | O_APPEND);
}

AppendFile AppendFile::openAppend(const std::string& path) {
  return openWithFlags(path, O_WRONLY | O_CREAT | O_APPEND);
}

void AppendFile::append(const void* data, std::size_t n) {
  PERFVAR_REQUIRE_E(fd_.valid(), "append on a closed AppendFile",
                    ErrorContext::at(ErrorCode::IoFailure));
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t put = ::write(fd_.get(), p + done, n - done);
    if (put > 0) {
      done += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) {
      continue;
    }
    throwIo("write", path_);
  }
}

void AppendFile::sync() {
  PERFVAR_REQUIRE_E(fd_.valid(), "sync on a closed AppendFile",
                    ErrorContext::at(ErrorCode::IoFailure));
  if (::fsync(fd_.get()) != 0) {
    throwIo("fsync", path_);
  }
}

void truncateFile(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    throwIo("truncate", path);
  }
}

}  // namespace perfvar::util
