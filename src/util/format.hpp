#ifndef PERFVAR_UTIL_FORMAT_HPP
#define PERFVAR_UTIL_FORMAT_HPP

/// \file format.hpp
/// Small text-formatting helpers shared by reports, dumps and benches.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace perfvar::fmt {

/// Format seconds with an adaptive unit (ns/us/ms/s), e.g. "12.34 ms".
std::string seconds(double s);

/// Format a byte count with an adaptive unit (B/KiB/MiB/GiB).
std::string bytes(std::uint64_t n);

/// Format a ratio as a percentage with one decimal, e.g. "25.0%".
std::string percent(double ratio);

/// Fixed-point with the given number of decimals.
std::string fixed(double v, int decimals);

/// Join strings with a separator.
std::string join(std::span<const std::string> parts, const std::string& sep);

/// Left-pad (negative width) or right-pad a string with spaces to |width|.
std::string pad(const std::string& s, int width);

/// Render a simple monospace table: first row is the header; column widths
/// auto-fit; returns the complete multi-line string.
std::string table(const std::vector<std::vector<std::string>>& rows);

/// A sparkline string using Unicode block characters, scaled to [min,max]
/// of the data; empty input gives an empty string.
std::string sparkline(std::span<const double> values);

}  // namespace perfvar::fmt

#endif  // PERFVAR_UTIL_FORMAT_HPP
