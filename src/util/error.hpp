#ifndef PERFVAR_UTIL_ERROR_HPP
#define PERFVAR_UTIL_ERROR_HPP

/// \file error.hpp
/// Error handling primitives for the perfvar libraries.
///
/// The libraries report contract violations and malformed inputs through
/// perfvar::Error (a std::runtime_error subtype). Internal invariants are
/// asserted with PERFVAR_ASSERT; user-facing precondition checks use
/// PERFVAR_REQUIRE which is always active.

#include <stdexcept>
#include <string>

namespace perfvar {

/// Exception type thrown by all perfvar libraries.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throwError(const char* condition, const char* file, int line,
                             const std::string& message);
}  // namespace detail

}  // namespace perfvar

/// Precondition / input validation check; always enabled.
#define PERFVAR_REQUIRE(cond, message)                                        \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::perfvar::detail::throwError(#cond, __FILE__, __LINE__, (message));    \
    }                                                                         \
  } while (false)

/// Internal invariant check; enabled unless NDEBUG-only builds disable it.
#define PERFVAR_ASSERT(cond, message) PERFVAR_REQUIRE(cond, message)

#endif  // PERFVAR_UTIL_ERROR_HPP
