#ifndef PERFVAR_UTIL_ERROR_HPP
#define PERFVAR_UTIL_ERROR_HPP

/// \file error.hpp
/// Error handling primitives for the perfvar libraries.
///
/// The libraries report contract violations and malformed inputs through
/// perfvar::Error (a std::runtime_error subtype). An Error carries a
/// machine-readable ErrorCode plus — where the failure site knows them —
/// the failing byte offset, rank and file path, so callers and tests can
/// assert on *which* failure occurred instead of string-matching what().
///
/// Internal invariants are asserted with PERFVAR_ASSERT (compiled out
/// under NDEBUG); user-facing precondition checks use PERFVAR_REQUIRE /
/// PERFVAR_REQUIRE_E, which are always active.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace perfvar {

/// Machine-readable failure classification carried by perfvar::Error.
/// `None` is reserved for "no fault" slots in per-rank status tables;
/// a thrown Error always carries `Generic` or a more specific code.
enum class ErrorCode : std::uint8_t {
  None = 0,            ///< no fault (status-table sentinel, never thrown)
  Generic,             ///< uncategorized contract violation
  IoFailure,           ///< file cannot be opened / read / written
  BadMagic,            ///< input does not start with the PVTF magic
  UnsupportedVersion,  ///< recognized container, unknown format version
  ChecksumMismatch,    ///< stored hash does not match recomputed hash
  TruncatedInput,      ///< input ends before the declared data does
  MalformedEvent,      ///< structurally invalid payload content
  StackImbalance,      ///< Enter/Leave nesting violated
  ChunkOutOfWindow,    ///< streamed chunk older than the reorder window
};

/// Stable kebab-case name for an ErrorCode ("checksum-mismatch", ...).
const char* errorCodeName(ErrorCode code);

/// Optional failure-site context attached to an Error at the throw site.
/// Fields default to "unknown" and are filled in only where the site
/// actually knows them.
struct ErrorContext {
  /// Sentinel for "byte offset unknown".
  static constexpr std::uint64_t kNoByteOffset = ~std::uint64_t{0};

  ErrorCode code = ErrorCode::Generic;
  std::uint64_t byteOffset = kNoByteOffset;  ///< offset into the input image
  std::int64_t rank = -1;                    ///< failing process, -1 unknown
  std::string path;                          ///< file path, empty if unknown

  /// Throw-site shorthand: ErrorContext::at(ErrorCode::TruncatedInput,
  /// offset, rank).
  static ErrorContext at(ErrorCode code,
                         std::uint64_t byteOffset = kNoByteOffset,
                         std::int64_t rank = -1) {
    ErrorContext c;
    c.code = code;
    c.byteOffset = byteOffset;
    c.rank = rank;
    return c;
  }
};

/// Exception type thrown by all perfvar libraries.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what)
      : std::runtime_error(what) {}
  Error(const std::string& what, ErrorContext context)
      : std::runtime_error(what), context_(std::move(context)) {}

  ErrorCode code() const { return context_.code; }
  /// Byte offset of the failure into the input image;
  /// ErrorContext::kNoByteOffset when unknown.
  std::uint64_t byteOffset() const { return context_.byteOffset; }
  /// Failing rank / process index; -1 when unknown.
  std::int64_t rank() const { return context_.rank; }
  /// File path involved in the failure; empty when unknown.
  const std::string& path() const { return context_.path; }
  const ErrorContext& context() const { return context_; }

private:
  ErrorContext context_;
};

namespace detail {
[[noreturn]] void throwError(const char* condition, const char* file, int line,
                             const std::string& message);
[[noreturn]] void throwError(const char* condition, const char* file, int line,
                             const std::string& message,
                             ErrorContext context);
}  // namespace detail

}  // namespace perfvar

/// Precondition / input validation check; always enabled.
#define PERFVAR_REQUIRE(cond, message)                                        \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::perfvar::detail::throwError(#cond, __FILE__, __LINE__, (message));    \
    }                                                                         \
  } while (false)

/// Precondition check carrying an ErrorCode (and optionally byte offset,
/// rank, path) so the thrown Error is machine-classifiable:
///   PERFVAR_REQUIRE_E(ok, "bad block",
///                     (ErrorContext{ErrorCode::ChecksumMismatch}));
/// Always enabled.
#define PERFVAR_REQUIRE_E(cond, message, context)                             \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::perfvar::detail::throwError(#cond, __FILE__, __LINE__, (message),     \
                                    (context));                               \
    }                                                                         \
  } while (false)

/// Internal invariant check; compiled out under NDEBUG. The condition is
/// never evaluated in release builds, so it must be side-effect free.
#ifdef NDEBUG
#define PERFVAR_ASSERT(cond, message)                                         \
  do {                                                                        \
    if (false) {                                                              \
      static_cast<void>(cond);                                                \
      static_cast<void>(message);                                             \
    }                                                                         \
  } while (false)
#else
#define PERFVAR_ASSERT(cond, message) PERFVAR_REQUIRE(cond, message)
#endif

#endif  // PERFVAR_UTIL_ERROR_HPP
