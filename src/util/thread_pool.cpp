#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace perfvar::util {

std::size_t ThreadPool::resolveThreadCount(std::size_t threads) {
  if (threads == 0) {
    threads = static_cast<std::size_t>(std::thread::hardware_concurrency());
  }
  return std::max<std::size_t>(1, threads);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolveThreadCount(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  taskReady_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  PERFVAR_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return inFlight_ == 0; });
  if (firstError_) {
    std::exception_ptr err;
    std::swap(err, firstError_);
    std::rethrow_exception(err);
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      taskReady_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and queue drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!firstError_) {
        firstError_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--inFlight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

void parallelChunks(ThreadPool* pool, std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body) {
  PERFVAR_REQUIRE(body != nullptr, "parallelChunks needs a body");
  if (n == 0) {
    return;
  }
  grain = std::max<std::size_t>(1, grain);
  if (pool == nullptr || pool->threadCount() <= 1 || n <= grain) {
    body(0, n);
    return;
  }
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const std::size_t end = std::min(n, begin + grain);
    pool->submit([&body, begin, end] { body(begin, end); });
  }
  pool->wait();
}

}  // namespace perfvar::util
