#include "util/thread_pool.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace perfvar::util {

namespace {

/// Index of the current thread inside its owning pool. Every worker
/// thread belongs to exactly one pool for its whole lifetime, so a plain
/// thread_local (no pool tag) is unambiguous. Non-worker threads (the
/// caller running an inline chunk) keep kNotAWorker and account their
/// chunks to worker slot 0 only when the pool is asked.
constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);
thread_local std::size_t tlsWorkerIndex = kNotAWorker;

}  // namespace

std::uint64_t ThreadPoolStats::totalTasks() const {
  std::uint64_t total = 0;
  for (const Worker& w : workers) total += w.tasksRun;
  return total;
}

std::uint64_t ThreadPoolStats::totalChunks() const {
  std::uint64_t total = 0;
  for (const Worker& w : workers) total += w.chunksRun;
  return total;
}

std::uint64_t ThreadPoolStats::totalStolen() const {
  std::uint64_t total = 0;
  for (const Worker& w : workers) total += w.chunksStolen;
  return total;
}

std::uint64_t ThreadPoolStats::totalIdleWakeups() const {
  std::uint64_t total = 0;
  for (const Worker& w : workers) total += w.idleWakeups;
  return total;
}

std::string formatThreadPoolStats(const ThreadPoolStats& stats) {
  std::ostringstream os;
  os << "thread pool: " << stats.workers.size() << " workers, tasks="
     << stats.totalTasks() << " chunks=" << stats.totalChunks()
     << " stolen=" << stats.totalStolen()
     << " idle-wakeups=" << stats.totalIdleWakeups() << '\n';
  for (std::size_t i = 0; i < stats.workers.size(); ++i) {
    const ThreadPoolStats::Worker& w = stats.workers[i];
    os << "  worker " << i << ": tasks=" << w.tasksRun
       << " chunks=" << w.chunksRun << " stolen=" << w.chunksStolen
       << " idle-wakeups=" << w.idleWakeups << '\n';
  }
  return os.str();
}

std::size_t ThreadPool::resolveThreadCount(std::size_t threads) {
  if (threads == 0) {
    threads = static_cast<std::size_t>(std::thread::hardware_concurrency());
  }
  return std::max<std::size_t>(1, threads);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolveThreadCount(threads);
  counters_ = std::make_unique<WorkerCounters[]>(n);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  taskReady_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  PERFVAR_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return inFlight_ == 0; });
  if (firstError_) {
    std::exception_ptr err;
    std::swap(err, firstError_);
    std::rethrow_exception(err);
  }
}

void ThreadPool::recordError() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!firstError_) {
    firstError_ = std::current_exception();
  }
}

void ThreadPool::workerLoop(std::size_t workerIndex) {
  tlsWorkerIndex = workerIndex;
  WorkerCounters& counters = counters_[workerIndex];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Hand-rolled predicate loop so spurious/late wakeups (another
      // worker grabbed the task first) are countable.
      while (!stop_ && queue_.empty()) {
        taskReady_.wait(lock);
        if (!stop_ && queue_.empty()) {
          counters.idleWakeups.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (queue_.empty()) {
        return;  // stop_ set and queue drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    counters.tasksRun.fetch_add(1, std::memory_order_relaxed);
    try {
      task();
    } catch (...) {
      recordError();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--inFlight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

/// Shared state of one runChunks call. Lives on the caller's stack: the
/// caller blocks in wait() until every runner finished, so the runners'
/// raw pointer never dangles.
struct ThreadPool::ChunkRun {
  /// One contiguous slice of the chunk index space, owned by one runner.
  /// Claims are a single fetch_add on `next`; a cursor past `end` just
  /// means the shard is drained (overshoot is bounded by the batch size
  /// times the number of failed claims, far from wrapping).
  struct alignas(64) Shard {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };

  std::size_t n = 0;
  std::size_t grain = 1;
  bool stealing = true;
  std::size_t batch = 1;
  std::size_t stealBatch = 1;
  // Raw array: Shard holds an atomic, so vector growth is ill-formed.
  std::unique_ptr<Shard[]> shards;
  std::size_t shardCount = 0;
};

void ThreadPool::runnerLoop(
    ChunkRun& run, std::size_t shard,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t self = tlsWorkerIndex == kNotAWorker ? 0 : tlsWorkerIndex;
  WorkerCounters& counters = counters_[self];
  const auto runRange = [&](std::size_t chunkBegin, std::size_t chunkEnd,
                            bool stolen) {
    for (std::size_t c = chunkBegin; c < chunkEnd; ++c) {
      const std::size_t begin = c * run.grain;
      const std::size_t end = std::min(run.n, begin + run.grain);
      try {
        body(begin, end);
      } catch (...) {
        // Match the one-task-per-chunk behavior of the old scheduler:
        // record the first error, keep running the remaining chunks.
        recordError();
      }
    }
    counters.chunksRun.fetch_add(chunkEnd - chunkBegin,
                                 std::memory_order_relaxed);
    if (stolen) {
      counters.chunksStolen.fetch_add(chunkEnd - chunkBegin,
                                      std::memory_order_relaxed);
    }
  };

  ChunkRun::Shard& own = run.shards[shard];
  for (;;) {
    const std::size_t begin =
        own.next.fetch_add(run.batch, std::memory_order_relaxed);
    if (begin >= own.end) {
      break;
    }
    runRange(begin, std::min(own.end, begin + run.batch), false);
  }
  if (!run.stealing) {
    return;
  }
  for (std::size_t k = 1; k < run.shardCount; ++k) {
    ChunkRun::Shard& victim = run.shards[(shard + k) % run.shardCount];
    for (;;) {
      const std::size_t begin =
          victim.next.fetch_add(run.stealBatch, std::memory_order_relaxed);
      if (begin >= victim.end) {
        break;
      }
      runRange(begin, std::min(victim.end, begin + run.stealBatch), true);
    }
  }
}

void ThreadPool::runChunks(
    std::size_t n, const ChunkOptions& options,
    const std::function<void(std::size_t, std::size_t)>& body) {
  PERFVAR_REQUIRE(body != nullptr, "runChunks needs a body");
  if (n == 0) {
    return;
  }
  const std::size_t grain = std::max<std::size_t>(1, options.grain);
  const std::size_t numChunks = (n + grain - 1) / grain;
  if (threadCount() <= 1 || numChunks <= 1) {
    body(0, n);
    return;
  }

  ChunkRun run;
  run.n = n;
  run.grain = grain;
  run.stealing = options.stealing;
  const std::size_t runners = std::min(threadCount(), numChunks);
  run.batch = options.batch != 0
                  ? options.batch
                  : std::clamp<std::size_t>(numChunks / (runners * 16), 1, 32);
  run.stealBatch = std::max<std::size_t>(1, run.batch / 4);

  // Static contiguous partition of the chunk space: shard s owns
  // [s*per + min(s, rem), ...) — a function of numChunks and the worker
  // count only. With stealing off this *is* the schedule.
  run.shards = std::make_unique<ChunkRun::Shard[]>(runners);
  run.shardCount = runners;
  const std::size_t per = numChunks / runners;
  const std::size_t rem = numChunks % runners;
  std::size_t chunkCursor = 0;
  for (std::size_t s = 0; s < runners; ++s) {
    const std::size_t len = per + (s < rem ? 1 : 0);
    run.shards[s].next.store(chunkCursor, std::memory_order_relaxed);
    run.shards[s].end = chunkCursor + len;
    chunkCursor += len;
  }

  ChunkRun* shared = &run;
  for (std::size_t s = 0; s < runners; ++s) {
    submit([this, shared, s, &body] { runnerLoop(*shared, s, body); });
  }
  wait();
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats out;
  out.workers.resize(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const WorkerCounters& c = counters_[i];
    out.workers[i].tasksRun = c.tasksRun.load(std::memory_order_relaxed);
    out.workers[i].chunksRun = c.chunksRun.load(std::memory_order_relaxed);
    out.workers[i].chunksStolen =
        c.chunksStolen.load(std::memory_order_relaxed);
    out.workers[i].idleWakeups =
        c.idleWakeups.load(std::memory_order_relaxed);
  }
  return out;
}

void ThreadPool::resetStats() {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    WorkerCounters& c = counters_[i];
    c.tasksRun.store(0, std::memory_order_relaxed);
    c.chunksRun.store(0, std::memory_order_relaxed);
    c.chunksStolen.store(0, std::memory_order_relaxed);
    c.idleWakeups.store(0, std::memory_order_relaxed);
  }
}

void parallelChunks(ThreadPool* pool, std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body) {
  ChunkOptions options;
  options.grain = grain;
  parallelChunks(pool, n, options, body);
}

void parallelChunks(ThreadPool* pool, std::size_t n,
                    const ChunkOptions& options,
                    const std::function<void(std::size_t, std::size_t)>& body) {
  PERFVAR_REQUIRE(body != nullptr, "parallelChunks needs a body");
  if (n == 0) {
    return;
  }
  if (pool == nullptr) {
    body(0, n);
    return;
  }
  pool->runChunks(n, options, body);
}

}  // namespace perfvar::util
