#ifndef PERFVAR_UTIL_HASH_HPP
#define PERFVAR_UTIL_HASH_HPP

/// \file hash.hpp
/// Incremental FNV-1a content hashing for cache keys.
///
/// The analysis engine (engine/engine.hpp) addresses cached stage results
/// by a fingerprint of the stage's options. Hasher provides a small,
/// deterministic, dependency-free 64-bit FNV-1a accumulator for that:
/// every field is mixed with a fixed-width encoding (doubles by bit
/// pattern, strings length-prefixed), so a fingerprint is stable across
/// runs and platforms with the same type widths and never depends on
/// address-space layout.
///
/// This is a content hash for cache addressing, NOT a cryptographic hash;
/// collisions are astronomically unlikely for the handful of option
/// structs hashed here but not adversarially hard.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace perfvar::util {

/// Incremental 64-bit FNV-1a hasher. Mix calls chain:
///   const auto key = Hasher{}.u64(stageTag).f64(threshold).digest();
class Hasher {
public:
  /// Mix `n` raw bytes.
  Hasher& bytes(const void* data, std::size_t n);

  /// Mix a 64-bit integer (fixed little-endian byte order).
  Hasher& u64(std::uint64_t v);

  /// Mix a double by bit pattern. Note -0.0 and 0.0 hash differently and
  /// every NaN payload hashes to its own key; for option fingerprints
  /// (human-chosen thresholds) this is the desired strictness.
  Hasher& f64(double v);

  /// Mix a bool as one byte.
  Hasher& boolean(bool b);

  /// Mix a string, length-prefixed so ("ab","c") != ("a","bc").
  Hasher& str(std::string_view s);

  /// Current hash value.
  std::uint64_t digest() const { return state_; }

private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;  ///< FNV offset basis
};

}  // namespace perfvar::util

#endif  // PERFVAR_UTIL_HASH_HPP
