#include "util/hash.hpp"

#include <cstring>

namespace perfvar::util {

namespace {
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
}  // namespace

Hasher& Hasher::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state_ ^= p[i];
    state_ *= kFnvPrime;
  }
  return *this;
}

Hasher& Hasher::u64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  return bytes(buf, sizeof(buf));
}

Hasher& Hasher::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return u64(bits);
}

Hasher& Hasher::boolean(bool b) {
  const unsigned char byte = b ? 1 : 0;
  return bytes(&byte, 1);
}

Hasher& Hasher::str(std::string_view s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

}  // namespace perfvar::util
