#ifndef PERFVAR_UTIL_SOCKET_HPP
#define PERFVAR_UTIL_SOCKET_HPP

/// \file socket.hpp
/// Minimal POSIX stream-socket helpers for the analysis server.
///
/// The server speaks its framed protocol (util/framing.hpp) over any
/// connected byte stream; these helpers provide the two transports it
/// uses: a Unix-domain listening socket for the `trace_tool serve`
/// daemon, and an anonymous socket pair for in-process clients (tests,
/// examples, benchmarks). Everything is RAII: a FileDescriptor closes on
/// destruction, and every failure throws perfvar::Error with
/// ErrorCode::IoFailure so callers get the same structured errors as the
/// file I/O layer.

#include <cstddef>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace perfvar::util {

/// Move-only owning wrapper of a POSIX file descriptor.
class FileDescriptor {
public:
  FileDescriptor() = default;
  explicit FileDescriptor(int fd) : fd_(fd) {}
  ~FileDescriptor() { close(); }

  FileDescriptor(const FileDescriptor&) = delete;
  FileDescriptor& operator=(const FileDescriptor&) = delete;
  FileDescriptor(FileDescriptor&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  FileDescriptor& operator=(FileDescriptor&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Close now (idempotent).
  void close();

  /// Give up ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

private:
  int fd_ = -1;
};

/// Create a Unix-domain stream socket listening on `path`. An existing
/// socket file at `path` is removed first (the daemon owns its socket
/// path). Throws Error(IoFailure) on any failure, including a path longer
/// than the platform's sun_path limit.
FileDescriptor listenUnix(const std::string& path, int backlog = 16);

/// Accept one connection on a listening socket. Blocks; throws
/// Error(IoFailure) on failure. Returns an invalid descriptor when the
/// listening socket was shut down (the server's stop signal).
FileDescriptor acceptConnection(int listenFd);

/// Connect to a Unix-domain socket. Retries connect() every
/// `retryIntervalMs` until `retries` attempts are exhausted (covers the
/// daemon-still-starting race in scripted sessions); 0 retries means one
/// immediate attempt. Throws Error(IoFailure) when the socket never
/// becomes connectable.
FileDescriptor connectUnix(const std::string& path, std::size_t retries = 0,
                           std::size_t retryIntervalMs = 100);

/// Reconnect schedule for connectUnix: `retries` additional attempts after
/// the first, waiting `initialDelayMs` before the second attempt and
/// doubling the wait after every failure up to `maxDelayMs` (exponential
/// backoff, so a client started before its daemon neither spins nor waits
/// a fixed worst-case interval).
struct ConnectRetryPolicy {
  std::size_t retries = 0;
  std::size_t initialDelayMs = 100;
  std::size_t maxDelayMs = 2000;
};

/// connectUnix with exponential backoff between attempts.
FileDescriptor connectUnix(const std::string& path,
                           const ConnectRetryPolicy& policy);

/// Anonymous connected stream-socket pair (AF_UNIX). The in-process
/// transport: one end is served, the other drives a client — no
/// filesystem involved.
std::pair<FileDescriptor, FileDescriptor> socketPair();

/// Read exactly `n` bytes. Returns false on a clean EOF before the first
/// byte; throws Error(TruncatedInput) on EOF mid-read and
/// Error(IoFailure) on transport errors. EINTR is retried.
bool readFull(int fd, void* buf, std::size_t n);

/// Write all `n` bytes; throws Error(IoFailure) on any failure (a closed
/// peer surfaces as EPIPE — callers must have SIGPIPE suppressed, see
/// suppressSigpipe()). EINTR is retried.
void writeFull(int fd, const void* buf, std::size_t n);

/// Process-wide SIGPIPE -> SIG_IGN (idempotent). Server and client entry
/// points call this so a peer hanging up surfaces as an EPIPE Error
/// instead of killing the process.
void suppressSigpipe();

/// Wake any thread blocked in acceptConnection() on this listening socket
/// (shutdown(2) on the descriptor); accept then reports "shut down".
void shutdownSocket(int fd);

/// Half-close the read side only (SHUT_RD): a thread blocked reading the
/// next request frame sees a clean EOF, while queued responses still
/// flow out. The graceful-drain primitive of Server::drain().
void shutdownSocketRead(int fd);

/// Best-effort nonblocking send on a connected socket (MSG_DONTWAIT, no
/// SIGPIPE). Returns false when the peer is gone or the transport failed;
/// on success `written` holds the bytes accepted (0 = kernel buffer full,
/// try again later). Never blocks and never throws.
bool sendNonBlocking(int fd, const void* buf, std::size_t n,
                     std::size_t& written) noexcept;

/// Wait until `fd` accepts more outgoing bytes. `timeoutMs` < 0 waits
/// indefinitely. Returns false on timeout; throws Error(IoFailure) when
/// the descriptor itself fails. EINTR is retried against the original
/// deadline.
bool pollWritable(int fd, int timeoutMs);

}  // namespace perfvar::util

#endif  // PERFVAR_UTIL_SOCKET_HPP
