#include "util/json_writer.hpp"

#include <cmath>
#include <cstdio>

namespace perfvar::util {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::value(double v) {
  separator();
  if (std::isfinite(v)) {
    out_ << v;
  } else {
    out_ << "null";
  }
  fresh_ = false;
}

}  // namespace perfvar::util
