#include "util/mmap_file.hpp"

#include <fstream>
#include <utility>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PERFVAR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PERFVAR_HAVE_MMAP 0
#endif

namespace perfvar::util {

namespace {

ErrorContext ioFailure(const std::string& path) {
  ErrorContext c;
  c.code = ErrorCode::IoFailure;
  c.path = path;
  return c;
}

/// Slurp the whole file with one buffered read.
std::vector<unsigned char> readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  PERFVAR_REQUIRE_E(in.good(), "cannot open '" + path + "' for reading",
                    ioFailure(path));
  const std::streamoff size = in.tellg();
  PERFVAR_REQUIRE_E(size >= 0, "cannot determine size of '" + path + "'",
                    ioFailure(path));
  std::vector<unsigned char> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  if (!bytes.empty()) {
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    PERFVAR_REQUIRE_E(
        in.gcount() == static_cast<std::streamsize>(bytes.size()),
        "short read from '" + path + "'", ioFailure(path));
  }
  return bytes;
}

}  // namespace

FileView FileView::open(const std::string& path, bool allowMmap) {
  FileView view;
#if PERFVAR_HAVE_MMAP
  if (allowMmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    PERFVAR_REQUIRE_E(fd >= 0, "cannot open '" + path + "' for reading",
                      ioFailure(path));
    struct stat st{};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const auto size = static_cast<std::size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        return view;  // empty file: empty view, nothing to map
      }
      void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (base != MAP_FAILED) {
        view.mappedBase_ = base;
        view.data_ = static_cast<const unsigned char*>(base);
        view.size_ = size;
        return view;
      }
      // fall through to the buffered read on mapping failure
    } else {
      ::close(fd);
    }
  }
#else
  (void)allowMmap;
#endif
  view.buffer_ = readWholeFile(path);
  view.data_ = view.buffer_.data();
  view.size_ = view.buffer_.size();
  return view;
}

FileView::~FileView() {
#if PERFVAR_HAVE_MMAP
  if (mappedBase_ != nullptr) {
    ::munmap(mappedBase_, size_);
  }
#endif
}

FileView::FileView(FileView&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mappedBase_(other.mappedBase_),
      buffer_(std::move(other.buffer_)) {
  if (!buffer_.empty()) {
    data_ = buffer_.data();
  }
  other.data_ = nullptr;
  other.size_ = 0;
  other.mappedBase_ = nullptr;
}

FileView& FileView::operator=(FileView&& other) noexcept {
  if (this != &other) {
#if PERFVAR_HAVE_MMAP
    if (mappedBase_ != nullptr) {
      ::munmap(mappedBase_, size_);
    }
#endif
    data_ = other.data_;
    size_ = other.size_;
    mappedBase_ = other.mappedBase_;
    buffer_ = std::move(other.buffer_);
    if (!buffer_.empty()) {
      data_ = buffer_.data();
    }
    other.data_ = nullptr;
    other.size_ = 0;
    other.mappedBase_ = nullptr;
  }
  return *this;
}

}  // namespace perfvar::util
