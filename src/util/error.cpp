#include "util/error.hpp"

#include <sstream>

namespace perfvar::detail {

void throwError(const char* condition, const char* file, int line,
                const std::string& message) {
  std::ostringstream os;
  os << "perfvar: " << message << " [failed: " << condition << " at " << file
     << ":" << line << "]";
  throw Error(os.str());
}

}  // namespace perfvar::detail
