#include "util/error.hpp"

#include <sstream>
#include <utility>

namespace perfvar {

const char* errorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::None:
      return "none";
    case ErrorCode::Generic:
      return "error";
    case ErrorCode::IoFailure:
      return "io-failure";
    case ErrorCode::BadMagic:
      return "bad-magic";
    case ErrorCode::UnsupportedVersion:
      return "unsupported-version";
    case ErrorCode::ChecksumMismatch:
      return "checksum-mismatch";
    case ErrorCode::TruncatedInput:
      return "truncated-input";
    case ErrorCode::MalformedEvent:
      return "malformed-event";
    case ErrorCode::StackImbalance:
      return "stack-imbalance";
    case ErrorCode::ChunkOutOfWindow:
      return "chunk-out-of-window";
  }
  return "unknown";
}

namespace detail {

namespace {

std::string formatWhat(const char* condition, const char* file, int line,
                       const std::string& message) {
  std::ostringstream os;
  os << "perfvar: " << message << " [failed: " << condition << " at " << file
     << ":" << line << "]";
  return os.str();
}

}  // namespace

void throwError(const char* condition, const char* file, int line,
                const std::string& message) {
  throw Error(formatWhat(condition, file, line, message));
}

void throwError(const char* condition, const char* file, int line,
                const std::string& message, ErrorContext context) {
  throw Error(formatWhat(condition, file, line, message), std::move(context));
}

}  // namespace detail
}  // namespace perfvar
