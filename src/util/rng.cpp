#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace perfvar {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // Use the top 53 bits for a uniformly distributed double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PERFVAR_REQUIRE(lo <= hi, "uniform: empty range");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  PERFVAR_REQUIRE(lo <= hi, "uniformInt: empty range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = (*this)();
  while (v >= limit) {
    v = (*this)();
  }
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (hasCachedNormal_) {
    hasCachedNormal_ = false;
    return cachedNormal_;
  }
  // Box-Muller transform.
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cachedNormal_ = r * std::sin(theta);
  hasCachedNormal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormalFactor(double sigma) {
  if (sigma == 0.0) {
    return 1.0;
  }
  return std::exp(sigma * normal());
}

double Rng::exponential(double rate) {
  PERFVAR_REQUIRE(rate > 0.0, "exponential: rate must be positive");
  double u = uniform();
  while (u <= 0.0) {
    u = uniform();
  }
  return -std::log(u) / rate;
}

Rng Rng::split() {
  return Rng((*this)());
}

}  // namespace perfvar
