#ifndef PERFVAR_UTIL_FRAMING_HPP
#define PERFVAR_UTIL_FRAMING_HPP

/// \file framing.hpp
/// Length-prefixed frame transport of the analysis server.
///
/// Every message on a server connection is one frame:
///
///   offset  size  field
///   0       4     payload length N (u32 LE), N <= maxPayload
///   4       1     frame type (u8, see server/protocol.hpp)
///   5       N     payload
///
/// The framing layer is deliberately dumb: it moves opaque (type,
/// payload) pairs and enforces only the length bound. What the types and
/// payloads mean is the protocol layer's business (server/protocol.hpp,
/// docs/PROTOCOL.md). Malformed input never crashes: an oversized
/// declared length throws Error(MalformedEvent) before any payload is
/// read, EOF mid-frame throws Error(TruncatedInput), and a clean EOF on a
/// frame boundary is reported as "no more frames".

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace perfvar::util {

/// One frame: opaque type byte plus payload bytes.
struct Frame {
  std::uint8_t type = 0;
  std::string payload;
};

/// Hard ceiling on a frame payload. Large enough for any v2 chunk a
/// producer reasonably streams (64 MiB); anything bigger is treated as a
/// protocol violation, not an allocation request.
inline constexpr std::size_t kMaxFramePayload = 64ULL * 1024 * 1024;

/// Serialize one frame into its wire bytes (header + payload).
std::string encodeFrame(std::uint8_t type, std::string_view payload);

/// Write one frame to `fd`. Throws Error(Generic) when the payload
/// exceeds kMaxFramePayload and Error(IoFailure) on transport failure.
void writeFrame(int fd, std::uint8_t type, std::string_view payload);

/// Read one frame from `fd`. Returns false on a clean EOF before the
/// first header byte (the peer hung up between frames). Throws
/// Error(MalformedEvent) when the declared length exceeds `maxPayload`
/// (nothing past the header is consumed), Error(TruncatedInput) on EOF
/// mid-frame, and Error(IoFailure) on transport errors.
bool readFrame(int fd, Frame& out, std::size_t maxPayload = kMaxFramePayload);

}  // namespace perfvar::util

#endif  // PERFVAR_UTIL_FRAMING_HPP
