#ifndef PERFVAR_UTIL_THREAD_POOL_HPP
#define PERFVAR_UTIL_THREAD_POOL_HPP

/// \file thread_pool.hpp
/// Fixed-size thread pool used by the parallel analysis engine.
///
/// Deliberately minimal (no work stealing, no futures): tasks go into one
/// shared FIFO queue, workers drain it, wait() blocks until the pool is
/// idle again. The analysis pipelines shard their per-rank loops into
/// chunk tasks via parallelChunks(); determinism is the caller's job
/// (every task writes only its own, disjoint output slots).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace perfvar::util {

/// Fixed-size FIFO thread pool with exception propagation.
class ThreadPool {
public:
  /// Spawn `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least one).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers; tasks still queued are executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueue a task. Tasks must not submit to or wait on the same pool
  /// (no nested parallelism; the pool has no work stealing to unblock a
  /// worker that waits).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. If any task threw,
  /// rethrows the first exception (later ones of the same batch are
  /// dropped) and clears the error state so the pool stays usable.
  void wait();

  /// Number of worker threads a `threads` option value resolves to:
  /// 0 = hardware concurrency, clamped to at least 1.
  static std::size_t resolveThreadCount(std::size_t threads);

private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable idle_;
  std::size_t inFlight_ = 0;  ///< queued + currently running tasks
  std::exception_ptr firstError_;
  bool stop_ = false;
};

/// Split [0, n) into chunks of at most `grain` indices and run
/// body(begin, end) for each. With a null pool, a single-threaded pool, or
/// n <= grain everything runs inline on the calling thread; otherwise the
/// chunks are submitted to the pool and waited for (exceptions propagate).
/// Chunk boundaries depend only on n and grain, never on the thread count.
void parallelChunks(ThreadPool* pool, std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace perfvar::util

#endif  // PERFVAR_UTIL_THREAD_POOL_HPP
