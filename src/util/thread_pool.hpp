#ifndef PERFVAR_UTIL_THREAD_POOL_HPP
#define PERFVAR_UTIL_THREAD_POOL_HPP

/// \file thread_pool.hpp
/// Fixed-size thread pool used by the parallel analysis engine.
///
/// Two scheduling layers. submit()/wait() is the original minimal shape:
/// tasks go into one shared FIFO queue, workers drain it, wait() blocks
/// until the pool is idle again. runChunks() is the throughput path for
/// the per-rank analysis loops: the chunk index space is cut into one
/// contiguous shard per worker, each worker claims batches from its own
/// shard with a single atomic fetch_add, and (unless disabled) steals
/// quarter-batches from the other shards once its own runs dry, so tail
/// ranks of a skewed trace no longer leave the rest of the pool idle.
///
/// Determinism contract: chunk boundaries depend only on n and grain —
/// never on the thread count, the batch size, or which worker ran a chunk.
/// Callers keep results bit-identical by writing only disjoint per-chunk
/// output slots; the scheduler only changes *who* runs a chunk and *when*.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace perfvar::util {

/// Scheduling knobs for ThreadPool::runChunks / parallelChunks.
struct ChunkOptions {
  /// Maximum indices per chunk (clamped to >= 1). Chunk c covers
  /// [c*grain, min(n, (c+1)*grain)) regardless of every other knob.
  std::size_t grain = 1;
  /// Work stealing between worker shards. Off = static contiguous
  /// partition of the chunk space (the pre-stealing baseline: tail-heavy
  /// shards serialize on their owner).
  bool stealing = true;
  /// Chunks reserved per atomic claim on the worker's own shard; 0 picks
  /// numChunks / (workers * 16) clamped to [1, 32]. Steals claim
  /// quarter-batches so a thief never walks off with a victim's tail.
  std::size_t batch = 0;
};

/// Per-worker scheduler counters, snapshot via ThreadPool::stats().
struct ThreadPoolStats {
  struct Worker {
    std::uint64_t tasksRun = 0;      ///< queue tasks executed (incl. runners)
    std::uint64_t chunksRun = 0;     ///< chunks executed via runChunks
    std::uint64_t chunksStolen = 0;  ///< subset of chunksRun from other shards
    std::uint64_t idleWakeups = 0;   ///< condvar wakeups with no work ready
  };
  std::vector<Worker> workers;

  std::uint64_t totalTasks() const;
  std::uint64_t totalChunks() const;
  std::uint64_t totalStolen() const;
  std::uint64_t totalIdleWakeups() const;
};

/// Multi-line human-readable rendering (one header line + one line per
/// worker), used by `trace_tool --verbose --threads N`.
std::string formatThreadPoolStats(const ThreadPoolStats& stats);

/// Fixed-size FIFO thread pool with exception propagation and a
/// work-stealing chunk scheduler.
class ThreadPool {
public:
  /// Spawn `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least one).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers; tasks still queued are executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueue a task. Tasks must not submit to or wait on the same pool
  /// (no nested parallelism; a worker that blocks in wait() would
  /// deadlock the queue it is supposed to drain).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. If any task threw,
  /// rethrows the first exception (later ones of the same batch are
  /// dropped) and clears the error state so the pool stays usable.
  void wait();

  /// Split [0, n) into chunks of `options.grain` indices and run
  /// body(begin, end) for every chunk across the pool, blocking until all
  /// chunks finished. With one worker or a single chunk the body runs
  /// inline as body(0, n). Exceptions from chunk bodies propagate like
  /// wait(): remaining chunks still run, the first error is rethrown.
  void runChunks(std::size_t n, const ChunkOptions& options,
                 const std::function<void(std::size_t, std::size_t)>& body);

  /// Snapshot of the per-worker scheduler counters since construction or
  /// the last resetStats(). Safe to call concurrently with running work
  /// (counters are relaxed atomics; a snapshot taken mid-batch may be a
  /// few chunks behind).
  ThreadPoolStats stats() const;
  void resetStats();

  /// Number of worker threads a `threads` option value resolves to:
  /// 0 = hardware concurrency, clamped to at least 1.
  static std::size_t resolveThreadCount(std::size_t threads);

private:
  struct ChunkRun;

  /// One cache line per worker so counter updates never false-share.
  struct alignas(64) WorkerCounters {
    std::atomic<std::uint64_t> tasksRun{0};
    std::atomic<std::uint64_t> chunksRun{0};
    std::atomic<std::uint64_t> chunksStolen{0};
    std::atomic<std::uint64_t> idleWakeups{0};
  };

  void workerLoop(std::size_t workerIndex);
  void runnerLoop(ChunkRun& run, std::size_t shard,
                  const std::function<void(std::size_t, std::size_t)>& body);
  void recordError();

  std::vector<std::thread> workers_;
  std::unique_ptr<WorkerCounters[]> counters_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable idle_;
  std::size_t inFlight_ = 0;  ///< queued + currently running tasks
  std::exception_ptr firstError_;
  bool stop_ = false;
};

/// Split [0, n) into chunks of at most `grain` indices and run
/// body(begin, end) for each. With a null pool, a single-threaded pool, or
/// n <= grain everything runs inline on the calling thread; otherwise the
/// chunks are scheduled via ThreadPool::runChunks (work stealing on) and
/// waited for (exceptions propagate).
/// Chunk boundaries depend only on n and grain, never on the thread count.
void parallelChunks(ThreadPool* pool, std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

/// As above with full scheduling control (stealing toggle, batch size).
void parallelChunks(ThreadPool* pool, std::size_t n,
                    const ChunkOptions& options,
                    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace perfvar::util

#endif  // PERFVAR_UTIL_THREAD_POOL_HPP
