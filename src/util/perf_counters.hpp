#ifndef PERFVAR_UTIL_PERF_COUNTERS_HPP
#define PERFVAR_UTIL_PERF_COUNTERS_HPP

/// \file perf_counters.hpp
/// Compile-flag-gated hot-loop instrumentation (-DPERFVAR_PERF_COUNTERS,
/// CMake option of the same name).
///
/// A counting site does `PERFVAR_COUNTER_INC("v2.varint_fast")` (or
/// `PERFVAR_COUNTER_ADD(name, delta)`); the macro expands to a relaxed
/// atomic add on a function-local static that registers itself with a
/// global registry on first execution. `collectPerfCounters()` returns a
/// name-sorted snapshot (sites sharing a name are summed) and
/// `resetPerfCounters()` zeroes every registered site. When the flag is
/// off the macros compile to nothing and the collect/reset entry points
/// stay callable (they report an empty set), so perfbench links either
/// way.

#include <cstdint>
#include <string>
#include <vector>

#if defined(PERFVAR_PERF_COUNTERS)
#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#endif

namespace perfvar::util {

/// One named counter in a `collectPerfCounters()` snapshot.
struct PerfCounterValue {
  std::string name;
  std::uint64_t value = 0;
};

#if defined(PERFVAR_PERF_COUNTERS)

namespace detail {

class PerfCounterRegistry;

/// A single counting site. Constructed lazily as a function-local static
/// by the macros below; registration happens once, counting is a relaxed
/// fetch_add with no lock.
class PerfCounter {
public:
  explicit PerfCounter(const char* name);

  const char* name() const { return name_; }
  std::uint64_t load() const { return value_.load(std::memory_order_relaxed); }
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  const char* name_;
  std::atomic<std::uint64_t> value_{0};
};

class PerfCounterRegistry {
public:
  static PerfCounterRegistry& instance() {
    static PerfCounterRegistry registry;
    return registry;
  }

  void add(PerfCounter* counter) {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.push_back(counter);
  }

  std::vector<PerfCounterValue> collect() const {
    std::map<std::string, std::uint64_t> merged;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const PerfCounter* counter : counters_) {
        merged[counter->name()] += counter->load();
      }
    }
    std::vector<PerfCounterValue> out;
    out.reserve(merged.size());
    for (const auto& [name, value] : merged) {
      out.push_back(PerfCounterValue{name, value});
    }
    return out;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (PerfCounter* counter : counters_) {
      counter->reset();
    }
  }

private:
  mutable std::mutex mutex_;
  std::vector<PerfCounter*> counters_;
};

inline PerfCounter::PerfCounter(const char* name) : name_(name) {
  PerfCounterRegistry::instance().add(this);
}

}  // namespace detail

inline std::vector<PerfCounterValue> collectPerfCounters() {
  return detail::PerfCounterRegistry::instance().collect();
}

inline void resetPerfCounters() {
  detail::PerfCounterRegistry::instance().reset();
}

#define PERFVAR_COUNTER_ADD(counterName, delta)                              \
  do {                                                                       \
    static ::perfvar::util::detail::PerfCounter perfvarCounterSite(          \
        counterName);                                                        \
    perfvarCounterSite.add(static_cast<std::uint64_t>(delta));               \
  } while (false)

#else  // !PERFVAR_PERF_COUNTERS

inline std::vector<PerfCounterValue> collectPerfCounters() { return {}; }
inline void resetPerfCounters() {}

#define PERFVAR_COUNTER_ADD(counterName, delta) \
  do {                                          \
  } while (false)

#endif  // PERFVAR_PERF_COUNTERS

#define PERFVAR_COUNTER_INC(counterName) PERFVAR_COUNTER_ADD(counterName, 1)

}  // namespace perfvar::util

#endif  // PERFVAR_UTIL_PERF_COUNTERS_HPP
