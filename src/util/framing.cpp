#include "util/framing.hpp"

#include "util/socket.hpp"

namespace perfvar::util {

std::string encodeFrame(std::uint8_t type, std::string_view payload) {
  PERFVAR_REQUIRE(payload.size() <= kMaxFramePayload,
                  "frame payload exceeds kMaxFramePayload");
  std::string wire;
  wire.reserve(5 + payload.size());
  const auto n = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((n >> (8 * i)) & 0xFF));
  }
  wire.push_back(static_cast<char>(type));
  wire.append(payload);
  return wire;
}

void writeFrame(int fd, std::uint8_t type, std::string_view payload) {
  const std::string wire = encodeFrame(type, payload);
  writeFull(fd, wire.data(), wire.size());
}

bool readFrame(int fd, Frame& out, std::size_t maxPayload) {
  unsigned char header[5];
  if (!readFull(fd, header, sizeof header)) {
    return false;
  }
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  PERFVAR_REQUIRE_E(n <= maxPayload,
                    "frame payload length " + std::to_string(n) +
                        " exceeds the limit of " + std::to_string(maxPayload),
                    ErrorContext::at(ErrorCode::MalformedEvent));
  out.type = header[4];
  out.payload.resize(n);
  if (n > 0 && !readFull(fd, out.payload.data(), n)) {
    ErrorContext context;
    context.code = ErrorCode::TruncatedInput;
    throw Error("connection closed between frame header and payload",
                std::move(context));
  }
  return true;
}

}  // namespace perfvar::util
