#ifndef PERFVAR_UTIL_STATS_HPP
#define PERFVAR_UTIL_STATS_HPP

/// \file stats.hpp
/// Descriptive and robust statistics used by the variation analysis.
///
/// Everything operates on spans of doubles; empty-input behaviour is
/// documented per function. Robust location/scale (median, MAD) are the
/// backbone of the outlier scoring in perfvar::analysis.

#include <cstddef>
#include <span>
#include <vector>

namespace perfvar::stats {

/// Summary of a sample: count, extrema, mean, standard deviation (population).
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double sum = 0.0;
};

/// Ordinary-least-squares line fit y = intercept + slope * x.
struct OlsFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1]; 0 for degenerate inputs.
  double r2 = 0.0;
};

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> xs);

/// Population variance; 0 for fewer than 2 elements.
double variance(std::span<const double> xs);

/// Population standard deviation; 0 for fewer than 2 elements.
double stddev(std::span<const double> xs);

/// Full summary in one pass; zeroed Summary for empty input.
Summary summarize(std::span<const double> xs);

/// Median (average of middle two for even sizes); 0 for empty input.
double median(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0,1]; 0 for empty input.
double quantile(std::span<const double> xs, double q);

/// Median absolute deviation (unscaled); 0 for empty input.
double mad(std::span<const double> xs);

/// Consistency constant that makes MAD estimate sigma for normal data.
inline constexpr double kMadToSigma = 1.4826022185056018;

/// Robust z-score of x against the sample: (x - median) / (1.4826 * MAD).
/// Falls back to the classic z-score when MAD is zero; 0 when stddev is
/// also zero (constant sample).
double robustZ(double x, std::span<const double> sample);

/// Classic z-score; 0 when the sample standard deviation is zero.
double zScore(double x, std::span<const double> sample);

/// Robust z of `x` against a *reference* sample that does not contain x
/// (leave-one-out scoring). Falls back MAD -> stddev -> relative deviation
/// (so a deviation from an exactly constant reference still scores large
/// instead of being diluted by itself, as happens with in-sample z).
double referenceZ(double x, std::span<const double> reference);

/// Leave-one-out robust z for every element: out[i] equals
/// referenceZ(xs[i], xs with position i removed), bit for bit. Computed in
/// O(n log n) total via one shared sort (the naive loop is O(n^2 log n)
/// and dominates whole-trace analysis at 10k+ ranks); elements whose
/// reference degenerates to MAD == 0 take an exact per-element fallback.
std::vector<double> leaveOneOutZ(std::span<const double> xs);

/// OLS fit of y against x. Requires xs.size() == ys.size(); returns a
/// zeroed fit for fewer than 2 points or zero x-variance.
OlsFit olsFit(std::span<const double> xs, std::span<const double> ys);

/// OLS fit of ys against their indices 0..n-1.
OlsFit olsTrend(std::span<const double> ys);

/// Pearson correlation coefficient; 0 for degenerate inputs.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (average ranks for ties); 0 for degenerate
/// inputs.
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Load-imbalance factor lambda = max/mean - 1; 0 for empty input or zero
/// mean. lambda = 0 means perfectly balanced.
double imbalanceFactor(std::span<const double> xs);

/// Percentage of time lost to imbalance: (max - mean) / max; in [0,1).
double imbalanceLoss(std::span<const double> xs);

/// Fractional ranks (0-based, ties averaged) of the sample.
std::vector<double> ranks(std::span<const double> xs);

/// Equal-width histogram with `bins` buckets spanning [min, max]. Values
/// equal to max land in the last bucket. Empty input yields all-zero counts.
std::vector<std::size_t> histogram(std::span<const double> xs, std::size_t bins);

namespace detail {

/// Straightforward sort-based implementations retained as differential
/// oracles: the optimized kernels above must match them bit for bit (see
/// tests/util_stats_test.cpp). Not for production call sites.
double medianReference(std::span<const double> xs);
double quantileReference(std::span<const double> xs, double q);
double madReference(std::span<const double> xs);
std::vector<double> leaveOneOutZReference(std::span<const double> xs);

}  // namespace detail

}  // namespace perfvar::stats

#endif  // PERFVAR_UTIL_STATS_HPP
