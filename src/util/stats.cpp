#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/perf_counters.hpp"

namespace perfvar::stats {

namespace {

std::vector<double> sorted(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}

double medianOfSorted(const std::vector<double>& v) {
  if (v.empty()) {
    return 0.0;
  }
  const std::size_t n = v.size();
  if (n % 2 == 1) {
    return v[n / 2];
  }
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Per-thread scratch for the selection kernels: one allocation amortized
/// across every median/MAD/robust-z call on the thread instead of a fresh
/// vector per call. Never escapes this translation unit.
std::vector<double>& selectionScratch() {
  thread_local std::vector<double> scratch;
  return scratch;
}

/// Median by nth_element; permutes `v`. Selects the same elements a full
/// sort would: for odd n the value at sorted index n/2, for even n the
/// max of the lower half paired with the n/2-th order statistic, combined
/// in the exact expression order of the sort-based implementation — so
/// the result is bit-identical to medianOfSorted(sorted(v)).
double medianInPlace(std::vector<double>& v) {
  if (v.empty()) {
    return 0.0;
  }
  const std::size_t n = v.size();
  const std::size_t mid = n / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (n % 2 == 1) {
    return v[mid];
  }
  const double lower =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + v[mid]);
}

/// Median of a sorted array `v` with the element at `removed` taken out,
/// without materializing the reduced array: element t of the reduced
/// array is v[t] when t < removed and v[t+1] otherwise.
double medianOfSortedMinusOne(const std::vector<double>& v,
                              std::size_t removed) {
  const std::size_t m = v.size() - 1;
  if (m == 0) {
    return 0.0;
  }
  if (m % 2 == 1) {
    const std::size_t h = m / 2;
    return h < removed ? v[h] : v[h + 1];
  }
  const std::size_t a = m / 2 - 1;
  const std::size_t b = m / 2;
  const double lower = a < removed ? v[a] : v[a + 1];
  const double upper = b < removed ? v[b] : v[b + 1];
  return 0.5 * (lower + upper);
}

}  // namespace

double mean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) {
    const double d = x - m;
    acc += d * d;
  }
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  return std::sqrt(variance(xs));
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) {
    return s;
  }
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  double sumSq = 0.0;
  for (const double x : xs) {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
    sumSq += x * x;
  }
  s.sum = sum;
  s.mean = sum / static_cast<double>(s.count);
  const double var =
      std::max(0.0, sumSq / static_cast<double>(s.count) - s.mean * s.mean);
  s.stddev = std::sqrt(var);
  return s;
}

double median(std::span<const double> xs) {
  auto& v = selectionScratch();
  v.assign(xs.begin(), xs.end());
  return medianInPlace(v);
}

double quantile(std::span<const double> xs, double q) {
  PERFVAR_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q must be in [0,1]");
  if (xs.empty()) {
    return 0.0;
  }
  auto& v = selectionScratch();
  v.assign(xs.begin(), xs.end());
  if (v.size() == 1) {
    return v[0];
  }
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(lo),
                   v.end());
  const double vlo = v[lo];
  // The sorted value at lo+1 is the minimum of everything nth_element
  // left above the pivot; hi == lo only at q == 1.0.
  const double vhi =
      hi == lo
          ? vlo
          : *std::min_element(v.begin() + static_cast<std::ptrdiff_t>(lo + 1),
                              v.end());
  return vlo * (1.0 - frac) + vhi * frac;
}

double mad(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  // One scratch copy serves both selections: the median permutes it but
  // keeps the multiset, then it is transformed in place to |x - med|.
  auto& v = selectionScratch();
  v.assign(xs.begin(), xs.end());
  const double med = medianInPlace(v);
  for (double& e : v) {
    e = std::abs(e - med);
  }
  return medianInPlace(v);
}

double robustZ(double x, std::span<const double> sample) {
  if (sample.empty()) {
    return 0.0;  // median 0, MAD 0, stddev 0 -> the zScore fallback is 0
  }
  auto& v = selectionScratch();
  v.assign(sample.begin(), sample.end());
  const double med = medianInPlace(v);
  for (double& e : v) {
    e = std::abs(e - med);
  }
  const double scale = kMadToSigma * medianInPlace(v);
  if (scale > 0.0) {
    return (x - med) / scale;
  }
  return zScore(x, sample);
}

double zScore(double x, std::span<const double> sample) {
  const double sd = stddev(sample);
  if (sd <= 0.0) {
    return 0.0;
  }
  return (x - mean(sample)) / sd;
}

double referenceZ(double x, std::span<const double> reference) {
  if (reference.empty()) {
    return 0.0;
  }
  auto& v = selectionScratch();
  v.assign(reference.begin(), reference.end());
  const double med = medianInPlace(v);
  for (double& e : v) {
    e = std::abs(e - med);
  }
  double scale = kMadToSigma * medianInPlace(v);
  if (scale <= 0.0) {
    scale = stddev(reference);
  }
  if (scale <= 0.0) {
    if (x == med) {
      return 0.0;
    }
    // Constant reference: any deviation is significant. Score relative to
    // 0.1% of the reference level (or an absolute epsilon near zero).
    const double base = std::max(1e-3 * std::abs(med), 1e-12);
    return (x - med) / base;
  }
  return (x - med) / scale;
}

std::vector<double> leaveOneOutZ(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<double> out(n, 0.0);
  if (n <= 1) {
    return out;  // referenceZ against an empty reference is 0
  }

  // Sort once; every leave-one-out reference is this order with one
  // position removed. Ties may be assigned either way: removing any
  // instance of an equal value leaves the same multiset.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return xs[a] < xs[b] || (xs[a] == xs[b] && a < b);
  });
  std::vector<double> a(n);
  for (std::size_t t = 0; t < n; ++t) {
    a[t] = xs[order[t]];
  }
  if (a.front() == a.back()) {
    return out;  // constant sample: x equals the reference median -> 0
  }

  const std::size_t m = n - 1;

  // Exact per-element fallback for degenerate references (MAD == 0):
  // rebuild the reference in original index order — the stddev inside
  // referenceZ sums in that order — and delegate to the oracle.
  const auto fallback = [&](std::size_t i) {
    std::vector<double> others;
    others.reserve(m);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) {
        others.push_back(xs[j]);
      }
    }
    PERFVAR_COUNTER_INC("stats.leave_one_out_fallback");
    return referenceZ(xs[i], others);
  };

  // The leave-one-out median takes at most three distinct values,
  // constant over contiguous ranges of the removed sorted position.
  struct Region {
    std::size_t first;
    std::size_t last;
    double med;
  };
  Region regions[3];
  std::size_t numRegions = 0;
  if (m % 2 == 1) {
    const std::size_t h = m / 2;
    regions[numRegions++] = {0, h, a[h + 1]};
    regions[numRegions++] = {h + 1, n - 1, a[h]};
  } else {
    const std::size_t lo = m / 2 - 1;
    const std::size_t hi = m / 2;
    regions[numRegions++] = {0, lo, 0.5 * (a[lo + 1] + a[hi + 1])};
    regions[numRegions++] = {hi, hi, 0.5 * (a[lo] + a[hi + 1])};
    regions[numRegions++] = {hi + 1, n - 1, 0.5 * (a[lo] + a[hi])};
  }

  // Scratch shared across regions: devs holds |a[t] - med| sorted, and
  // devRank[t] is the position of a[t]'s deviation inside devs.
  std::vector<double> devs(n);
  std::vector<std::size_t> devRank(n);
  for (std::size_t r = 0; r < numRegions; ++r) {
    const double med = regions[r].med;
    // |a[t] - med| is two sorted runs over sorted `a`: decreasing up to
    // the split (values <= med, walked backwards) and increasing after
    // it. A linear two-run merge sorts the deviations branchlessly
    // relative to a comparison sort and yields each element's rank.
    const std::size_t split = static_cast<std::size_t>(
        std::upper_bound(a.begin(), a.end(), med) - a.begin());
    std::size_t left = split;   // next left candidate is a[left - 1]
    std::size_t right = split;  // next right candidate is a[right]
    for (std::size_t t = 0; t < n; ++t) {
      const bool takeLeft =
          left != 0 && (right == n || std::abs(a[left - 1] - med) <=
                                          std::abs(a[right] - med));
      if (takeLeft) {
        --left;
        devs[t] = std::abs(a[left] - med);
        devRank[left] = t;
      } else {
        devs[t] = std::abs(a[right] - med);
        devRank[right] = t;
        ++right;
      }
    }
    for (std::size_t k = regions[r].first; k <= regions[r].last; ++k) {
      const std::size_t i = order[k];
      const double scale =
          kMadToSigma * medianOfSortedMinusOne(devs, devRank[k]);
      if (scale > 0.0) {
        out[i] = (xs[i] - med) / scale;
        PERFVAR_COUNTER_INC("stats.leave_one_out_fast");
      } else {
        out[i] = fallback(i);
      }
    }
  }
  return out;
}

OlsFit olsFit(std::span<const double> xs, std::span<const double> ys) {
  PERFVAR_REQUIRE(xs.size() == ys.size(), "olsFit: size mismatch");
  OlsFit fit;
  const std::size_t n = xs.size();
  if (n < 2) {
    return fit;
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 0.0;
  return fit;
}

OlsFit olsTrend(std::span<const double> ys) {
  std::vector<double> xs(ys.size());
  std::iota(xs.begin(), xs.end(), 0.0);
  return olsFit(xs, ys);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  PERFVAR_REQUIRE(xs.size() == ys.size(), "pearson: size mismatch");
  const std::size_t n = xs.size();
  if (n < 2) {
    return 0.0;
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) {
      ++j;
    }
    // Average rank across the tie group [i, j].
    const double avgRank = 0.5 * (static_cast<double>(i) + static_cast<double>(j));
    for (std::size_t k = i; k <= j; ++k) {
      out[order[k]] = avgRank;
    }
    i = j + 1;
  }
  return out;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  PERFVAR_REQUIRE(xs.size() == ys.size(), "spearman: size mismatch");
  if (xs.size() < 2) {
    return 0.0;
  }
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

double imbalanceFactor(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  const double m = mean(xs);
  if (m <= 0.0) {
    return 0.0;
  }
  const double mx = *std::max_element(xs.begin(), xs.end());
  return mx / m - 1.0;
}

double imbalanceLoss(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  const double mx = *std::max_element(xs.begin(), xs.end());
  if (mx <= 0.0) {
    return 0.0;
  }
  return (mx - mean(xs)) / mx;
}

std::vector<std::size_t> histogram(std::span<const double> xs, std::size_t bins) {
  PERFVAR_REQUIRE(bins > 0, "histogram: bins must be positive");
  std::vector<std::size_t> counts(bins, 0);
  if (xs.empty()) {
    return counts;
  }
  const auto [mnIt, mxIt] = std::minmax_element(xs.begin(), xs.end());
  const double mn = *mnIt;
  const double mx = *mxIt;
  const double width = mx - mn;
  for (const double x : xs) {
    std::size_t b = 0;
    if (width > 0.0) {
      b = static_cast<std::size_t>((x - mn) / width * static_cast<double>(bins));
      b = std::min(b, bins - 1);
    }
    ++counts[b];
  }
  return counts;
}

namespace detail {

double medianReference(std::span<const double> xs) {
  return medianOfSorted(sorted(xs));
}

double quantileReference(std::span<const double> xs, double q) {
  PERFVAR_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q must be in [0,1]");
  if (xs.empty()) {
    return 0.0;
  }
  const std::vector<double> v = sorted(xs);
  if (v.size() == 1) {
    return v[0];
  }
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double madReference(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  const double med = medianOfSorted(sorted(xs));
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (const double x : xs) {
    dev.push_back(std::abs(x - med));
  }
  std::sort(dev.begin(), dev.end());
  return medianOfSorted(dev);
}

std::vector<double> leaveOneOutZReference(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> others;
    others.reserve(n > 0 ? n - 1 : 0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) {
        others.push_back(xs[j]);
      }
    }
    out[i] = referenceZ(xs[i], others);
  }
  return out;
}

}  // namespace detail

}  // namespace perfvar::stats
