#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace perfvar::stats {

namespace {

std::vector<double> sorted(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}

double medianOfSorted(const std::vector<double>& v) {
  if (v.empty()) {
    return 0.0;
  }
  const std::size_t n = v.size();
  if (n % 2 == 1) {
    return v[n / 2];
  }
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

double mean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) {
    const double d = x - m;
    acc += d * d;
  }
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  return std::sqrt(variance(xs));
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) {
    return s;
  }
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  double sumSq = 0.0;
  for (const double x : xs) {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
    sumSq += x * x;
  }
  s.sum = sum;
  s.mean = sum / static_cast<double>(s.count);
  const double var =
      std::max(0.0, sumSq / static_cast<double>(s.count) - s.mean * s.mean);
  s.stddev = std::sqrt(var);
  return s;
}

double median(std::span<const double> xs) {
  return medianOfSorted(sorted(xs));
}

double quantile(std::span<const double> xs, double q) {
  PERFVAR_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q must be in [0,1]");
  if (xs.empty()) {
    return 0.0;
  }
  const auto v = sorted(xs);
  if (v.size() == 1) {
    return v[0];
  }
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double mad(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  const double med = median(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (const double x : xs) {
    dev.push_back(std::abs(x - med));
  }
  return median(dev);
}

double robustZ(double x, std::span<const double> sample) {
  const double med = median(sample);
  const double scale = kMadToSigma * mad(sample);
  if (scale > 0.0) {
    return (x - med) / scale;
  }
  return zScore(x, sample);
}

double zScore(double x, std::span<const double> sample) {
  const double sd = stddev(sample);
  if (sd <= 0.0) {
    return 0.0;
  }
  return (x - mean(sample)) / sd;
}

double referenceZ(double x, std::span<const double> reference) {
  if (reference.empty()) {
    return 0.0;
  }
  const double med = median(reference);
  double scale = kMadToSigma * mad(reference);
  if (scale <= 0.0) {
    scale = stddev(reference);
  }
  if (scale <= 0.0) {
    if (x == med) {
      return 0.0;
    }
    // Constant reference: any deviation is significant. Score relative to
    // 0.1% of the reference level (or an absolute epsilon near zero).
    const double base = std::max(1e-3 * std::abs(med), 1e-12);
    return (x - med) / base;
  }
  return (x - med) / scale;
}

OlsFit olsFit(std::span<const double> xs, std::span<const double> ys) {
  PERFVAR_REQUIRE(xs.size() == ys.size(), "olsFit: size mismatch");
  OlsFit fit;
  const std::size_t n = xs.size();
  if (n < 2) {
    return fit;
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 0.0;
  return fit;
}

OlsFit olsTrend(std::span<const double> ys) {
  std::vector<double> xs(ys.size());
  std::iota(xs.begin(), xs.end(), 0.0);
  return olsFit(xs, ys);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  PERFVAR_REQUIRE(xs.size() == ys.size(), "pearson: size mismatch");
  const std::size_t n = xs.size();
  if (n < 2) {
    return 0.0;
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) {
      ++j;
    }
    // Average rank across the tie group [i, j].
    const double avgRank = 0.5 * (static_cast<double>(i) + static_cast<double>(j));
    for (std::size_t k = i; k <= j; ++k) {
      out[order[k]] = avgRank;
    }
    i = j + 1;
  }
  return out;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  PERFVAR_REQUIRE(xs.size() == ys.size(), "spearman: size mismatch");
  if (xs.size() < 2) {
    return 0.0;
  }
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

double imbalanceFactor(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  const double m = mean(xs);
  if (m <= 0.0) {
    return 0.0;
  }
  const double mx = *std::max_element(xs.begin(), xs.end());
  return mx / m - 1.0;
}

double imbalanceLoss(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  const double mx = *std::max_element(xs.begin(), xs.end());
  if (mx <= 0.0) {
    return 0.0;
  }
  return (mx - mean(xs)) / mx;
}

std::vector<std::size_t> histogram(std::span<const double> xs, std::size_t bins) {
  PERFVAR_REQUIRE(bins > 0, "histogram: bins must be positive");
  std::vector<std::size_t> counts(bins, 0);
  if (xs.empty()) {
    return counts;
  }
  const auto [mnIt, mxIt] = std::minmax_element(xs.begin(), xs.end());
  const double mn = *mnIt;
  const double mx = *mxIt;
  const double width = mx - mn;
  for (const double x : xs) {
    std::size_t b = 0;
    if (width > 0.0) {
      b = static_cast<std::size_t>((x - mn) / width * static_cast<double>(bins));
      b = std::min(b, bins - 1);
    }
    ++counts[b];
  }
  return counts;
}

}  // namespace perfvar::stats
