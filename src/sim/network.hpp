#ifndef PERFVAR_SIM_NETWORK_HPP
#define PERFVAR_SIM_NETWORK_HPP

/// \file network.hpp
/// LogP-style analytic network cost model of the simulator.
///
/// Point-to-point: the sender is busy for `sendOverhead + bytes/bandwidth`
/// (eager injection); the message arrives `latency + bytes/bandwidth`
/// after the send started. Collectives use logarithmic-tree estimates.

#include <cstdint>

namespace perfvar::sim {

struct NetworkModel {
  double latency = 1.5e-6;          ///< end-to-end latency (s)
  double bandwidth = 5.0e9;         ///< bytes per second
  double sendOverhead = 0.4e-6;     ///< sender CPU overhead (s)
  double recvOverhead = 0.4e-6;     ///< receiver CPU overhead (s)
  double collectivePerStage = 2.0e-6;  ///< per-tree-stage cost (s)

  /// Time for `bytes` on the wire.
  double transferTime(std::uint64_t bytes) const;

  /// Arrival delay of an eager message (measured from send start).
  double messageDelay(std::uint64_t bytes) const;

  /// Busy time of the sender for an eager send.
  double sendBusyTime(std::uint64_t bytes) const;

  /// Time from the last arrival to completion of a barrier over `ranks`.
  double barrierCost(std::size_t ranks) const;

  /// Time from the last arrival to completion of an allreduce.
  double allreduceCost(std::size_t ranks, std::uint64_t bytes) const;

  /// Delay after the root's arrival until non-root ranks hold the data.
  double bcastCost(std::size_t ranks, std::uint64_t bytes) const;
};

/// Number of tree stages for `ranks` participants (ceil(log2), >= 1).
unsigned treeStages(std::size_t ranks);

}  // namespace perfvar::sim

#endif  // PERFVAR_SIM_NETWORK_HPP
