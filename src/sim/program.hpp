#ifndef PERFVAR_SIM_PROGRAM_HPP
#define PERFVAR_SIM_PROGRAM_HPP

/// \file program.hpp
/// Message-passing program descriptions for the simulator.
///
/// A Program is one straight-line operation sequence per rank (SPMD
/// programs simply build the same shape for every rank). Operations are
/// either local (compute, region enter/leave, metric increments) or
/// coordinating (collectives, point-to-point messages); the Simulator
/// resolves the coordination semantics and emits a trace.

#include <cstdint>
#include <string>
#include <vector>

#include "trace/definitions.hpp"
#include "trace/types.hpp"

namespace perfvar::sim {

/// Kind of one program operation.
enum class OpKind : std::uint8_t {
  Compute,      ///< busy for `seconds` in function `fn`
  EnterRegion,  ///< enter structuring function `fn` (zero-cost)
  LeaveRegion,  ///< leave structuring function `fn` (zero-cost)
  Barrier,      ///< world barrier
  Allreduce,    ///< world allreduce of `bytes`
  Bcast,        ///< world broadcast of `bytes` from `root`
  Send,         ///< eager send of `bytes` to `peer` with `tag`
  Recv,         ///< blocking receive from `peer` with `tag`
  Isend,        ///< nonblocking eager send; completes via Wait
  Irecv,        ///< nonblocking receive post; completes via Wait
  Wait,         ///< wait for the request in `request`
  MetricAdd,    ///< add `value` to metric `metric`
};

/// One operation of a rank program.
struct Op {
  OpKind kind = OpKind::Compute;
  trace::FunctionId fn = trace::kInvalidFunction;
  double seconds = 0.0;       ///< Compute: base duration
  double osDelay = 0.0;       ///< Compute: injected interruption (adds wall
                              ///< time but no CPU cycles)
  double fpExceptions = 0.0;  ///< Compute: FP-exception counter increment
  std::uint32_t peer = 0;     ///< Send/Recv peer rank; Bcast root
  std::uint32_t tag = 0;      ///< Send/Recv message tag
  std::uint64_t bytes = 0;    ///< message / collective payload
  std::uint32_t request = 0;  ///< Isend/Irecv/Wait request handle
  trace::MetricId metric = trace::kInvalidMetric;  ///< MetricAdd target
  double value = 0.0;                              ///< MetricAdd amount
};

/// Extra attributes of a compute operation.
struct ComputeAttrs {
  double osDelay = 0.0;
  double fpExceptions = 0.0;
};

/// A complete program: definitions plus one op sequence per rank.
struct Program {
  std::size_t ranks = 0;
  trace::FunctionRegistry functions;
  trace::MetricRegistry metrics;
  std::vector<std::vector<Op>> ops;  ///< [rank]

  /// Ids of the auto-registered MPI functions (defined lazily by the
  /// builder when the corresponding op is first used).
  trace::FunctionId fnBarrier = trace::kInvalidFunction;
  trace::FunctionId fnAllreduce = trace::kInvalidFunction;
  trace::FunctionId fnBcast = trace::kInvalidFunction;
  trace::FunctionId fnSend = trace::kInvalidFunction;
  trace::FunctionId fnRecv = trace::kInvalidFunction;
  trace::FunctionId fnIsend = trace::kInvalidFunction;
  trace::FunctionId fnIrecv = trace::kInvalidFunction;
  trace::FunctionId fnWait = trace::kInvalidFunction;

  std::size_t totalOps() const;
};

/// Convenience builder with per-op validation.
class ProgramBuilder {
public:
  explicit ProgramBuilder(std::size_t ranks);

  std::size_t ranks() const { return program_.ranks; }

  trace::FunctionId function(const std::string& name,
                             const std::string& group = "",
                             trace::Paradigm paradigm =
                                 trace::Paradigm::Compute);
  trace::MetricId metric(const std::string& name, const std::string& unit = "",
                         trace::MetricMode mode =
                             trace::MetricMode::Accumulated);

  void compute(std::uint32_t rank, trace::FunctionId fn, double seconds,
               const ComputeAttrs& attrs = {});
  void enter(std::uint32_t rank, trace::FunctionId fn);
  void leave(std::uint32_t rank, trace::FunctionId fn);
  void barrier(std::uint32_t rank);
  void allreduce(std::uint32_t rank, std::uint64_t bytes);
  void bcast(std::uint32_t rank, std::uint32_t root, std::uint64_t bytes);
  void send(std::uint32_t rank, std::uint32_t peer, std::uint32_t tag,
            std::uint64_t bytes);
  void recv(std::uint32_t rank, std::uint32_t peer, std::uint32_t tag);

  /// Nonblocking point-to-point. The returned request handle must be
  /// passed to wait() (finish() verifies that every request is waited).
  std::uint32_t isend(std::uint32_t rank, std::uint32_t peer,
                      std::uint32_t tag, std::uint64_t bytes);
  std::uint32_t irecv(std::uint32_t rank, std::uint32_t peer,
                      std::uint32_t tag);
  void wait(std::uint32_t rank, std::uint32_t request);
  /// Wait for every outstanding request of the rank, in posting order.
  void waitAll(std::uint32_t rank);

  void metricAdd(std::uint32_t rank, trace::MetricId metric, double value);

  /// All ranks at once (SPMD helpers).
  void barrierAll();
  void allreduceAll(std::uint64_t bytes);

  Program finish();

private:
  std::vector<Op>& rankOps(std::uint32_t rank);

  Program program_;
  std::vector<std::vector<trace::FunctionId>> regionStacks_;
  std::vector<std::uint32_t> nextRequest_;          ///< per rank
  std::vector<std::vector<std::uint32_t>> openRequests_;  ///< per rank
  bool finished_ = false;
};

}  // namespace perfvar::sim

#endif  // PERFVAR_SIM_PROGRAM_HPP
