#include "sim/program.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace perfvar::sim {

std::size_t Program::totalOps() const {
  std::size_t n = 0;
  for (const auto& per : ops) {
    n += per.size();
  }
  return n;
}

ProgramBuilder::ProgramBuilder(std::size_t ranks) {
  PERFVAR_REQUIRE(ranks >= 1, "program needs at least one rank");
  program_.ranks = ranks;
  program_.ops.resize(ranks);
  regionStacks_.resize(ranks);
  nextRequest_.assign(ranks, 0);
  openRequests_.resize(ranks);
}

trace::FunctionId ProgramBuilder::function(const std::string& name,
                                           const std::string& group,
                                           trace::Paradigm paradigm) {
  return program_.functions.intern(name, group, paradigm);
}

trace::MetricId ProgramBuilder::metric(const std::string& name,
                                       const std::string& unit,
                                       trace::MetricMode mode) {
  return program_.metrics.intern(name, unit, mode);
}

std::vector<Op>& ProgramBuilder::rankOps(std::uint32_t rank) {
  PERFVAR_REQUIRE(!finished_, "builder already finished");
  PERFVAR_REQUIRE(rank < program_.ranks, "invalid rank");
  return program_.ops[rank];
}

void ProgramBuilder::compute(std::uint32_t rank, trace::FunctionId fn,
                             double seconds, const ComputeAttrs& attrs) {
  PERFVAR_REQUIRE(fn < program_.functions.size(),
                  "compute references undefined function");
  PERFVAR_REQUIRE(seconds >= 0.0 && attrs.osDelay >= 0.0,
                  "durations must be non-negative");
  Op op;
  op.kind = OpKind::Compute;
  op.fn = fn;
  op.seconds = seconds;
  op.osDelay = attrs.osDelay;
  op.fpExceptions = attrs.fpExceptions;
  rankOps(rank).push_back(op);
}

void ProgramBuilder::enter(std::uint32_t rank, trace::FunctionId fn) {
  PERFVAR_REQUIRE(fn < program_.functions.size(),
                  "enter references undefined function");
  Op op;
  op.kind = OpKind::EnterRegion;
  op.fn = fn;
  rankOps(rank).push_back(op);
  regionStacks_[rank].push_back(fn);
}

void ProgramBuilder::leave(std::uint32_t rank, trace::FunctionId fn) {
  PERFVAR_REQUIRE(fn < program_.functions.size(),
                  "leave references undefined function");
  auto& ops = rankOps(rank);
  PERFVAR_REQUIRE(!regionStacks_[rank].empty() &&
                      regionStacks_[rank].back() == fn,
                  "leave does not match innermost region");
  Op op;
  op.kind = OpKind::LeaveRegion;
  op.fn = fn;
  ops.push_back(op);
  regionStacks_[rank].pop_back();
}

void ProgramBuilder::barrier(std::uint32_t rank) {
  if (program_.fnBarrier == trace::kInvalidFunction) {
    program_.fnBarrier =
        program_.functions.intern("MPI_Barrier", "MPI", trace::Paradigm::MPI);
  }
  Op op;
  op.kind = OpKind::Barrier;
  op.fn = program_.fnBarrier;
  rankOps(rank).push_back(op);
}

void ProgramBuilder::allreduce(std::uint32_t rank, std::uint64_t bytes) {
  if (program_.fnAllreduce == trace::kInvalidFunction) {
    program_.fnAllreduce = program_.functions.intern("MPI_Allreduce", "MPI",
                                                     trace::Paradigm::MPI);
  }
  Op op;
  op.kind = OpKind::Allreduce;
  op.fn = program_.fnAllreduce;
  op.bytes = bytes;
  rankOps(rank).push_back(op);
}

void ProgramBuilder::bcast(std::uint32_t rank, std::uint32_t root,
                           std::uint64_t bytes) {
  PERFVAR_REQUIRE(root < program_.ranks, "invalid bcast root");
  if (program_.fnBcast == trace::kInvalidFunction) {
    program_.fnBcast =
        program_.functions.intern("MPI_Bcast", "MPI", trace::Paradigm::MPI);
  }
  Op op;
  op.kind = OpKind::Bcast;
  op.fn = program_.fnBcast;
  op.peer = root;
  op.bytes = bytes;
  rankOps(rank).push_back(op);
}

void ProgramBuilder::send(std::uint32_t rank, std::uint32_t peer,
                          std::uint32_t tag, std::uint64_t bytes) {
  PERFVAR_REQUIRE(peer < program_.ranks && peer != rank, "invalid send peer");
  if (program_.fnSend == trace::kInvalidFunction) {
    program_.fnSend =
        program_.functions.intern("MPI_Send", "MPI", trace::Paradigm::MPI);
  }
  Op op;
  op.kind = OpKind::Send;
  op.fn = program_.fnSend;
  op.peer = peer;
  op.tag = tag;
  op.bytes = bytes;
  rankOps(rank).push_back(op);
}

void ProgramBuilder::recv(std::uint32_t rank, std::uint32_t peer,
                          std::uint32_t tag) {
  PERFVAR_REQUIRE(peer < program_.ranks && peer != rank, "invalid recv peer");
  if (program_.fnRecv == trace::kInvalidFunction) {
    program_.fnRecv =
        program_.functions.intern("MPI_Recv", "MPI", trace::Paradigm::MPI);
  }
  Op op;
  op.kind = OpKind::Recv;
  op.fn = program_.fnRecv;
  op.peer = peer;
  op.tag = tag;
  rankOps(rank).push_back(op);
}

std::uint32_t ProgramBuilder::isend(std::uint32_t rank, std::uint32_t peer,
                                    std::uint32_t tag, std::uint64_t bytes) {
  PERFVAR_REQUIRE(peer < program_.ranks && peer != rank,
                  "invalid isend peer");
  if (program_.fnIsend == trace::kInvalidFunction) {
    program_.fnIsend =
        program_.functions.intern("MPI_Isend", "MPI", trace::Paradigm::MPI);
  }
  Op op;
  op.kind = OpKind::Isend;
  op.fn = program_.fnIsend;
  op.peer = peer;
  op.tag = tag;
  op.bytes = bytes;
  op.request = nextRequest_[rank]++;
  rankOps(rank).push_back(op);
  openRequests_[rank].push_back(op.request);
  return op.request;
}

std::uint32_t ProgramBuilder::irecv(std::uint32_t rank, std::uint32_t peer,
                                    std::uint32_t tag) {
  PERFVAR_REQUIRE(peer < program_.ranks && peer != rank,
                  "invalid irecv peer");
  if (program_.fnIrecv == trace::kInvalidFunction) {
    program_.fnIrecv =
        program_.functions.intern("MPI_Irecv", "MPI", trace::Paradigm::MPI);
  }
  Op op;
  op.kind = OpKind::Irecv;
  op.fn = program_.fnIrecv;
  op.peer = peer;
  op.tag = tag;
  op.request = nextRequest_[rank]++;
  rankOps(rank).push_back(op);
  openRequests_[rank].push_back(op.request);
  return op.request;
}

void ProgramBuilder::wait(std::uint32_t rank, std::uint32_t request) {
  auto& open = openRequests_[rank];
  const auto it = std::find(open.begin(), open.end(), request);
  PERFVAR_REQUIRE(it != open.end(),
                  "wait on unknown or already-waited request");
  if (program_.fnWait == trace::kInvalidFunction) {
    program_.fnWait =
        program_.functions.intern("MPI_Wait", "MPI", trace::Paradigm::MPI);
  }
  Op op;
  op.kind = OpKind::Wait;
  op.fn = program_.fnWait;
  op.request = request;
  rankOps(rank).push_back(op);
  open.erase(it);
}

void ProgramBuilder::waitAll(std::uint32_t rank) {
  PERFVAR_REQUIRE(rank < program_.ranks, "invalid rank");
  // wait() mutates openRequests_; iterate over a copy in posting order.
  const std::vector<std::uint32_t> open = openRequests_[rank];
  for (const std::uint32_t request : open) {
    wait(rank, request);
  }
}

void ProgramBuilder::metricAdd(std::uint32_t rank, trace::MetricId metric,
                               double value) {
  PERFVAR_REQUIRE(metric < program_.metrics.size(),
                  "metricAdd references undefined metric");
  Op op;
  op.kind = OpKind::MetricAdd;
  op.metric = metric;
  op.value = value;
  rankOps(rank).push_back(op);
}

void ProgramBuilder::barrierAll() {
  for (std::uint32_t r = 0; r < program_.ranks; ++r) {
    barrier(r);
  }
}

void ProgramBuilder::allreduceAll(std::uint64_t bytes) {
  for (std::uint32_t r = 0; r < program_.ranks; ++r) {
    allreduce(r, bytes);
  }
}

Program ProgramBuilder::finish() {
  PERFVAR_REQUIRE(!finished_, "builder already finished");
  for (std::uint32_t r = 0; r < program_.ranks; ++r) {
    PERFVAR_REQUIRE(regionStacks_[r].empty(),
                    "rank " + std::to_string(r) + " has unclosed regions");
    PERFVAR_REQUIRE(openRequests_[r].empty(),
                    "rank " + std::to_string(r) +
                        " has requests without a wait");
  }
  finished_ = true;
  return std::move(program_);
}

}  // namespace perfvar::sim
