#include "sim/simulator.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <vector>

#include "trace/builder.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace perfvar::sim {

namespace {

enum class BlockKind : std::uint8_t { None, Collective, Recv, Wait };

/// State of a nonblocking request.
struct Request {
  bool isRecv = false;
  std::uint32_t peer = 0;
  std::uint32_t tag = 0;
};

struct CollectiveInstance {
  OpKind kind = OpKind::Barrier;
  trace::FunctionId fn = trace::kInvalidFunction;
  std::uint64_t bytes = 0;
  std::uint32_t root = 0;
  std::size_t arrived = 0;
  std::vector<double> arrival;  ///< per rank; NaN until arrived
  bool initialized = false;
};

struct Message {
  double arrival = 0.0;
  std::uint64_t bytes = 0;
};

/// Full simulator state; the public simulate() drives it.
class Engine {
public:
  Engine(const Program& program, const SimOptions& options, SimReport* report)
      : program_(program),
        options_(options),
        report_(report),
        builder_(program.ranks, options.resolution) {
    // Mirror the program's definitions so function/metric ids coincide.
    for (const auto& def : program.functions.all()) {
      builder_.defineFunction(def.name, def.group, def.paradigm);
    }
    for (const auto& def : program.metrics.all()) {
      builder_.defineMetric(def.name, def.unit, def.mode);
    }
    if (options.counters.enableCycles) {
      cyclesMetric_ = builder_.defineMetric(options.counters.cyclesMetricName,
                                            "cycles");
    }
    if (options.counters.enableFpExceptions) {
      fpMetric_ = builder_.defineMetric(
          options.counters.fpExceptionsMetricName, "exceptions");
    }
    const std::size_t nMetrics =
        program.metrics.size() + (cyclesMetric_ != trace::kInvalidMetric) +
        (fpMetric_ != trace::kInvalidMetric);

    const std::size_t ranks = program.ranks;
    pc_.assign(ranks, 0);
    clock_.assign(ranks, 0.0);
    requests_.resize(ranks);
    blocked_.assign(ranks, BlockKind::None);
    blockedSeq_.assign(ranks, 0);
    collSeq_.assign(ranks, 0);
    cumulative_.assign(ranks, std::vector<double>(nMetrics, 0.0));
    rngs_.reserve(ranks);
    Rng master(options.noise.seed);
    for (std::size_t r = 0; r < ranks; ++r) {
      rngs_.push_back(master.split());
    }
  }

  trace::Trace run() {
    const std::size_t ranks = program_.ranks;
    while (true) {
      bool progress = false;
      bool allDone = true;
      for (std::uint32_t r = 0; r < ranks; ++r) {
        progress |= runRank(r);
        if (!done(r)) {
          allDone = false;
        }
      }
      if (allDone) {
        break;
      }
      if (!progress) {
        throwDeadlock();
      }
    }
    if (report_ != nullptr) {
      report_->makespan = *std::max_element(clock_.begin(), clock_.end());
      report_->messages = deliveredMessages_;
      report_->collectives = completedCollectives_;
    }
    trace::Trace tr = builder_.finish();
    if (report_ != nullptr) {
      report_->events = tr.eventCount();
    }
    return tr;
  }

private:
  bool done(std::uint32_t r) const {
    return blocked_[r] == BlockKind::None &&
           pc_[r] >= program_.ops[r].size();
  }

  trace::Timestamp tick(double seconds) const {
    return trace::secondsToTicks(seconds, options_.resolution);
  }

  [[noreturn]] void throwDeadlock() const {
    std::ostringstream os;
    os << "simulation deadlock:";
    for (std::uint32_t r = 0; r < program_.ranks; ++r) {
      if (done(r)) {
        continue;
      }
      os << "\n  rank " << r << " ";
      switch (blocked_[r]) {
        case BlockKind::Collective:
          os << "waiting in collective #" << blockedSeq_[r];
          break;
        case BlockKind::Recv: {
          const Op& op = program_.ops[r][pc_[r]];
          os << "waiting for message from rank " << op.peer << " tag "
             << op.tag;
          break;
        }
        case BlockKind::Wait: {
          const Op& op = program_.ops[r][pc_[r]];
          os << "waiting on request #" << op.request;
          break;
        }
        case BlockKind::None:
          os << "runnable (scheduler bug)";
          break;
      }
    }
    throw Error(os.str());
  }

  /// Emit a metric sample if the cumulative value changed since the last
  /// emission for that metric on that rank.
  void emitMetricIfChanged(std::uint32_t r, double atSeconds,
                           trace::MetricId m) {
    if (m == trace::kInvalidMetric) {
      return;
    }
    const double value = cumulative_[r][m];
    auto& emitted = lastEmitted_[{r, m}];
    if (value != emitted) {
      builder_.metric(r, tick(atSeconds), m, value);
      emitted = value;
    }
  }

  void execCompute(std::uint32_t r, const Op& op) {
    const double factor = options_.noise.sigma > 0.0
                              ? rngs_[r].lognormalFactor(options_.noise.sigma)
                              : 1.0;
    const double busy = op.seconds * factor;
    const double wall = busy + op.osDelay;
    const double start = clock_[r];
    const double end = start + wall;
    builder_.enter(r, tick(start), op.fn);
    if (cyclesMetric_ != trace::kInvalidMetric && busy > 0.0) {
      cumulative_[r][cyclesMetric_] +=
          busy * options_.counters.clockGhz * 1e9;
      emitMetricIfChanged(r, end, cyclesMetric_);
    }
    if (fpMetric_ != trace::kInvalidMetric && op.fpExceptions != 0.0) {
      cumulative_[r][fpMetric_] += op.fpExceptions;
      emitMetricIfChanged(r, end, fpMetric_);
    }
    builder_.leave(r, tick(end), op.fn);
    clock_[r] = end;
  }

  void execSend(std::uint32_t r, const Op& op) {
    const double start = clock_[r];
    const double busy = options_.network.sendBusyTime(op.bytes);
    builder_.enter(r, tick(start), op.fn);
    builder_.mpiSend(r, tick(start), op.peer, op.tag, op.bytes);
    builder_.leave(r, tick(start + busy), op.fn);
    clock_[r] = start + busy;
    messages_[{r, op.peer, op.tag}].push_back(
        Message{start + options_.network.messageDelay(op.bytes), op.bytes});
  }

  void execIsend(std::uint32_t r, const Op& op) {
    const double start = clock_[r];
    builder_.enter(r, tick(start), op.fn);
    builder_.mpiSend(r, tick(start), op.peer, op.tag, op.bytes);
    builder_.leave(r, tick(start + options_.network.sendOverhead), op.fn);
    clock_[r] = start + options_.network.sendOverhead;
    messages_[{r, op.peer, op.tag}].push_back(
        Message{start + options_.network.messageDelay(op.bytes), op.bytes});
    setRequest(r, op.request, Request{false, op.peer, op.tag});
  }

  void execIrecv(std::uint32_t r, const Op& op) {
    const double start = clock_[r];
    builder_.enter(r, tick(start), op.fn);
    builder_.leave(r, tick(start + options_.network.recvOverhead), op.fn);
    clock_[r] = start + options_.network.recvOverhead;
    setRequest(r, op.request, Request{true, op.peer, op.tag});
  }

  void setRequest(std::uint32_t r, std::uint32_t id, Request request) {
    if (requests_[r].size() <= id) {
      requests_[r].resize(id + 1);
    }
    requests_[r][id] = request;
  }

  /// Try to complete a Wait op; returns false if the awaited message has
  /// not been sent yet.
  bool tryWait(std::uint32_t r, const Op& op) {
    PERFVAR_REQUIRE(op.request < requests_[r].size(),
                    "wait on unposted request");
    const Request& req = requests_[r][op.request];
    const double start = clock_[r];
    if (!req.isRecv) {
      // Eager send: already complete; the wait costs nothing.
      builder_.enter(r, tick(start), op.fn);
      builder_.leave(r, tick(start), op.fn);
      return true;
    }
    const auto key = std::make_tuple(req.peer, r, req.tag);
    const auto it = messages_.find(key);
    if (it == messages_.end() || it->second.empty()) {
      return false;
    }
    const Message msg = it->second.front();
    it->second.pop_front();
    const double completion = std::max(start, msg.arrival);
    builder_.enter(r, tick(start), op.fn);
    builder_.mpiRecv(r, tick(completion), req.peer, req.tag, msg.bytes);
    builder_.leave(r, tick(completion), op.fn);
    clock_[r] = completion;
    ++deliveredMessages_;
    return true;
  }

  /// Try to complete a receive; returns false if no message is available.
  bool tryRecv(std::uint32_t r, const Op& op) {
    const auto key = std::make_tuple(op.peer, r, op.tag);
    const auto it = messages_.find(key);
    if (it == messages_.end() || it->second.empty()) {
      return false;
    }
    const Message msg = it->second.front();
    it->second.pop_front();
    const double start = clock_[r];
    const double completion =
        std::max(start + options_.network.recvOverhead, msg.arrival);
    builder_.enter(r, tick(start), op.fn);
    builder_.mpiRecv(r, tick(completion), op.peer, op.tag, msg.bytes);
    builder_.leave(r, tick(completion), op.fn);
    clock_[r] = completion;
    ++deliveredMessages_;
    return true;
  }

  /// Register arrival at a collective; resolves it when complete.
  void arriveCollective(std::uint32_t r, const Op& op) {
    const std::size_t seq = collSeq_[r]++;
    CollectiveInstance& inst = collectives_[seq];
    if (!inst.initialized) {
      inst.kind = op.kind;
      inst.fn = op.fn;
      inst.bytes = op.bytes;
      inst.root = op.peer;
      inst.arrival.assign(program_.ranks, 0.0);
      inst.initialized = true;
    } else {
      PERFVAR_REQUIRE(inst.kind == op.kind && inst.fn == op.fn,
                      "collective mismatch: ranks issue different "
                      "collectives at the same sequence position");
    }
    inst.arrival[r] = clock_[r];
    ++inst.arrived;
    blocked_[r] = BlockKind::Collective;
    blockedSeq_[r] = seq;
    if (inst.arrived == program_.ranks) {
      resolveCollective(seq, inst);
    }
  }

  void resolveCollective(std::size_t seq, CollectiveInstance& inst) {
    const double last =
        *std::max_element(inst.arrival.begin(), inst.arrival.end());
    const std::size_t ranks = program_.ranks;
    for (std::uint32_t r = 0; r < ranks; ++r) {
      double completion = 0.0;
      switch (inst.kind) {
        case OpKind::Barrier:
          completion = last + options_.network.barrierCost(ranks);
          break;
        case OpKind::Allreduce:
          completion = last + options_.network.allreduceCost(ranks,
                                                             inst.bytes);
          break;
        case OpKind::Bcast:
          completion = std::max(
              inst.arrival[r],
              inst.arrival[inst.root] +
                  options_.network.bcastCost(ranks, inst.bytes));
          break;
        default:
          PERFVAR_ASSERT(false, "invalid collective kind");
      }
      builder_.enter(r, tick(inst.arrival[r]), inst.fn);
      builder_.leave(r, tick(completion), inst.fn);
      clock_[r] = completion;
      PERFVAR_ASSERT(blocked_[r] == BlockKind::Collective &&
                         blockedSeq_[r] == seq,
                     "collective resolution out of order");
      blocked_[r] = BlockKind::None;
      ++pc_[r];
    }
    ++completedCollectives_;
    collectives_.erase(seq);
  }

  /// Execute ops of rank r until it blocks or finishes.
  /// Returns whether any op made progress.
  bool runRank(std::uint32_t r) {
    bool progress = false;
    while (true) {
      if (blocked_[r] == BlockKind::Collective) {
        return progress;  // resolved by the last arriving rank
      }
      if (blocked_[r] == BlockKind::Recv || blocked_[r] == BlockKind::Wait) {
        const Op& op = program_.ops[r][pc_[r]];
        const bool done = blocked_[r] == BlockKind::Recv ? tryRecv(r, op)
                                                         : tryWait(r, op);
        if (!done) {
          return progress;
        }
        blocked_[r] = BlockKind::None;
        ++pc_[r];
        progress = true;
        continue;
      }
      if (pc_[r] >= program_.ops[r].size()) {
        return progress;
      }
      const Op& op = program_.ops[r][pc_[r]];
      switch (op.kind) {
        case OpKind::Compute:
          execCompute(r, op);
          ++pc_[r];
          break;
        case OpKind::EnterRegion:
          builder_.enter(r, tick(clock_[r]), op.fn);
          ++pc_[r];
          break;
        case OpKind::LeaveRegion:
          builder_.leave(r, tick(clock_[r]), op.fn);
          ++pc_[r];
          break;
        case OpKind::MetricAdd:
          cumulative_[r][op.metric] += op.value;
          emitMetricIfChanged(r, clock_[r], op.metric);
          ++pc_[r];
          break;
        case OpKind::Send:
          execSend(r, op);
          ++pc_[r];
          break;
        case OpKind::Recv:
          if (tryRecv(r, op)) {
            ++pc_[r];
          } else {
            blocked_[r] = BlockKind::Recv;
            return true;  // becoming blocked still counts as progress once
          }
          break;
        case OpKind::Isend:
          execIsend(r, op);
          ++pc_[r];
          break;
        case OpKind::Irecv:
          execIrecv(r, op);
          ++pc_[r];
          break;
        case OpKind::Wait:
          if (tryWait(r, op)) {
            ++pc_[r];
          } else {
            blocked_[r] = BlockKind::Wait;
            return true;
          }
          break;
        case OpKind::Barrier:
        case OpKind::Allreduce:
        case OpKind::Bcast:
          arriveCollective(r, op);
          // pc is advanced by resolveCollective (for all ranks at once);
          // if this rank was the last arrival it is already unblocked.
          if (blocked_[r] == BlockKind::Collective) {
            return true;
          }
          break;
      }
      progress = true;
    }
  }

  const Program& program_;
  const SimOptions& options_;
  SimReport* report_;
  trace::TraceBuilder builder_;

  trace::MetricId cyclesMetric_ = trace::kInvalidMetric;
  trace::MetricId fpMetric_ = trace::kInvalidMetric;

  std::vector<std::size_t> pc_;
  std::vector<double> clock_;
  std::vector<BlockKind> blocked_;
  std::vector<std::size_t> blockedSeq_;
  std::vector<std::size_t> collSeq_;
  std::vector<std::vector<Request>> requests_;  ///< [rank][requestId]
  std::vector<std::vector<double>> cumulative_;  ///< [rank][metric]
  std::map<std::pair<std::uint32_t, trace::MetricId>, double> lastEmitted_;
  std::vector<Rng> rngs_;

  std::map<std::size_t, CollectiveInstance> collectives_;
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
           std::deque<Message>>
      messages_;
  std::size_t deliveredMessages_ = 0;
  std::size_t completedCollectives_ = 0;
};

}  // namespace

trace::Trace simulate(const Program& program, const SimOptions& options,
                      SimReport* report) {
  PERFVAR_REQUIRE(program.ranks >= 1, "program has no ranks");
  Engine engine(program, options, report);
  return engine.run();
}

}  // namespace perfvar::sim
