#ifndef PERFVAR_SIM_SIMULATOR_HPP
#define PERFVAR_SIM_SIMULATOR_HPP

/// \file simulator.hpp
/// Deterministic discrete-event simulator of message-passing programs.
///
/// Executes a Program and produces a trace with the same structure a
/// Score-P measurement of the equivalent MPI application would have:
/// enter/leave events for compute functions and MPI calls, message
/// events, and hardware-counter metric samples. The essential semantics
/// for the SOS analysis are the synchronization wait times:
///
///  * a barrier/allreduce completes `cost` after the LAST rank arrives,
///    so fast ranks accumulate wait time inside the MPI call;
///  * a receive blocks until the matching message arrived;
///  * a broadcast releases non-roots only after the root arrived.
///
/// Hardware-counter model: PAPI_TOT_CYC advances only while a compute
/// operation is actually executing (base duration x noise); injected OS
/// delays add wall time but no cycles - exactly the signature the paper's
/// second case study diagnoses. FP-exception counts are taken from the
/// compute ops' attributes.

#include <cstdint>
#include <string>

#include "sim/network.hpp"
#include "sim/program.hpp"
#include "trace/trace.hpp"

namespace perfvar::sim {

/// Random multiplicative noise on compute durations.
struct NoiseModel {
  /// Log-normal shape parameter; 0 disables noise entirely.
  double sigma = 0.0;
  std::uint64_t seed = 0x5EEDBA5EULL;
};

/// Hardware-counter emulation.
struct CounterModel {
  bool enableCycles = true;
  double clockGhz = 2.5;
  bool enableFpExceptions = true;
  std::string cyclesMetricName = "PAPI_TOT_CYC";
  std::string fpExceptionsMetricName = "FR_FPU_EXCEPTIONS_SSE_MICROTRAPS";
};

/// Simulator configuration.
struct SimOptions {
  NetworkModel network{};
  NoiseModel noise{};
  CounterModel counters{};
  /// Trace timestamp resolution (ticks per second).
  std::uint64_t resolution = 1'000'000'000ULL;
};

/// Simulation summary statistics.
struct SimReport {
  double makespan = 0.0;       ///< latest event time (s)
  std::size_t messages = 0;    ///< point-to-point messages delivered
  std::size_t collectives = 0; ///< collective instances completed
  std::size_t events = 0;      ///< trace events emitted
};

/// Run a program and return its trace (optionally filling `report`).
/// Throws perfvar::Error on deadlock (mismatched collectives or
/// receives without matching sends).
trace::Trace simulate(const Program& program, const SimOptions& options = {},
                      SimReport* report = nullptr);

}  // namespace perfvar::sim

#endif  // PERFVAR_SIM_SIMULATOR_HPP
