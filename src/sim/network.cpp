#include "sim/network.hpp"

#include <algorithm>

namespace perfvar::sim {

unsigned treeStages(std::size_t ranks) {
  unsigned stages = 0;
  std::size_t span = 1;
  while (span < ranks) {
    span *= 2;
    ++stages;
  }
  return std::max(stages, 1u);
}

double NetworkModel::transferTime(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / bandwidth;
}

double NetworkModel::messageDelay(std::uint64_t bytes) const {
  return latency + transferTime(bytes);
}

double NetworkModel::sendBusyTime(std::uint64_t bytes) const {
  return sendOverhead + transferTime(bytes);
}

double NetworkModel::barrierCost(std::size_t ranks) const {
  return collectivePerStage * treeStages(ranks);
}

double NetworkModel::allreduceCost(std::size_t ranks,
                                   std::uint64_t bytes) const {
  // Reduce + broadcast tree; payload crosses the wire twice.
  return 2.0 * collectivePerStage * treeStages(ranks) +
         2.0 * transferTime(bytes);
}

double NetworkModel::bcastCost(std::size_t ranks, std::uint64_t bytes) const {
  return collectivePerStage * treeStages(ranks) + transferTime(bytes);
}

}  // namespace perfvar::sim
