#include "analysis/overlay.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace perfvar::analysis {

MetricOverlay MetricOverlay::build(const SosResult& sos, Value value) {
  MetricOverlay overlay;
  const auto& tr = sos.trace();
  const double res = static_cast<double>(tr.resolution());
  overlay.start_ = tr.startTime();
  overlay.end_ = tr.endTime();
  overlay.steps_.resize(sos.processCount());
  for (std::size_t p = 0; p < sos.processCount(); ++p) {
    for (const auto& a : sos.process(static_cast<trace::ProcessId>(p))) {
      OverlayStep step;
      step.start = a.segment.enter;
      step.end = a.segment.leave;
      switch (value) {
        case Value::SosSeconds:
          step.value = static_cast<double>(a.sosTime) / res;
          break;
        case Value::DurationSeconds:
          step.value = static_cast<double>(a.segment.inclusive()) / res;
          break;
        case Value::SyncSeconds:
          step.value = static_cast<double>(a.syncTime) / res;
          break;
      }
      overlay.steps_[p].push_back(step);
    }
  }
  return overlay;
}

double MetricOverlay::at(trace::ProcessId p, trace::Timestamp t) const {
  PERFVAR_REQUIRE(p < steps_.size(), "invalid process id");
  const auto& series = steps_[p];
  // Binary search for the first step ending after t.
  const auto it = std::upper_bound(
      series.begin(), series.end(), t,
      [](trace::Timestamp time, const OverlayStep& s) { return time < s.end; });
  if (it != series.end() && t >= it->start) {
    return it->value;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

std::vector<std::vector<double>> MetricOverlay::sampleGrid(
    std::size_t bins) const {
  PERFVAR_REQUIRE(bins > 0, "bins must be positive");
  std::vector<std::vector<double>> grid(
      steps_.size(),
      std::vector<double>(bins, std::numeric_limits<double>::quiet_NaN()));
  const double span = static_cast<double>(end_ - start_);
  if (span <= 0.0) {
    return grid;
  }
  for (std::size_t p = 0; p < steps_.size(); ++p) {
    for (std::size_t b = 0; b < bins; ++b) {
      const double center =
          static_cast<double>(start_) +
          span * (static_cast<double>(b) + 0.5) / static_cast<double>(bins);
      grid[p][b] =
          at(static_cast<trace::ProcessId>(p),
             static_cast<trace::Timestamp>(center));
    }
  }
  return grid;
}

std::vector<std::vector<double>> expandQuarantinedRows(
    const std::vector<std::vector<double>>& filtered,
    const trace::TraceView& full) {
  if (full.quarantined().empty()) {
    return filtered;
  }
  std::vector<std::vector<double>> expanded(full.processCount());
  std::size_t next = 0;
  for (std::size_t p = 0; p < full.processCount(); ++p) {
    if (full.isQuarantined(static_cast<trace::ProcessId>(p))) {
      continue;  // leave the row empty
    }
    PERFVAR_REQUIRE(next < filtered.size(),
                    "expandQuarantinedRows: fewer rows than healthy ranks");
    expanded[p] = filtered[next++];
  }
  PERFVAR_REQUIRE(next == filtered.size(),
                  "expandQuarantinedRows: more rows than healthy ranks");
  return expanded;
}

std::vector<std::size_t> quarantinedRowIndices(const trace::TraceView& full) {
  std::vector<std::size_t> rows;
  rows.reserve(full.quarantined().size());
  for (const trace::QuarantinedRank& q : full.quarantined()) {
    rows.push_back(q.process);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace perfvar::analysis
