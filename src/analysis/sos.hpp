#ifndef PERFVAR_ANALYSIS_SOS_HPP
#define PERFVAR_ANALYSIS_SOS_HPP

/// \file sos.hpp
/// Synchronization-oblivious segment time (paper Section V).
///
/// For every segment (invocation of the segmentation function) the
/// analyzer computes
///
///     SOS-time = segment duration - sum of the inclusive times of the
///                maximal synchronization invocations inside the segment.
///
/// Subtracting wait/communication time removes the equalizing effect of
/// barriers: a rank that computes fast but waits long and a rank that
/// computes slowly have the same segment duration but very different
/// SOS-times, exposing the true source of a runtime imbalance.
///
/// Per segment, the analyzer additionally accumulates a per-paradigm time
/// breakdown (maximal frames per paradigm) and the delta of every
/// accumulated metric — both used by the case-study reproductions.

#include <array>
#include <vector>

#include "analysis/segments.hpp"
#include "analysis/sync.hpp"
#include "trace/trace.hpp"
#include "trace/view.hpp"

namespace perfvar::analysis {

inline constexpr std::size_t kParadigmCount = 6;

/// Analysis result of one segment.
struct SegmentAnalysis {
  Segment segment;
  trace::Timestamp syncTime = 0;  ///< subtracted synchronization time
  trace::Timestamp sosTime = 0;   ///< segment duration - syncTime
  /// Time covered by maximal frames of each paradigm inside the segment,
  /// indexed by static_cast<size_t>(Paradigm).
  std::array<trace::Timestamp, kParadigmCount> paradigmTime{};
  /// Per-metric change over the segment: sample-delta sum for accumulated
  /// metrics, last observed value for absolute metrics. Indexed by MetricId.
  std::vector<double> metricDelta;
};

/// SOS analysis result for one segmentation function over a whole trace.
class SosResult {
public:
  SosResult(const trace::TraceView& trace, trace::FunctionId segmentFunction,
            std::vector<std::vector<SegmentAnalysis>> perProcess);

  trace::FunctionId segmentFunction() const { return segmentFunction_; }
  std::size_t processCount() const { return perProcess_.size(); }

  const std::vector<SegmentAnalysis>& process(trace::ProcessId p) const;
  const std::vector<std::vector<SegmentAnalysis>>& all() const {
    return perProcess_;
  }

  /// Maximum / minimum number of segments over all processes.
  std::size_t maxSegmentsPerProcess() const;
  std::size_t minSegmentsPerProcess() const;

  /// SOS-time in seconds of segment `i` on process `p`.
  double sosSeconds(trace::ProcessId p, std::size_t i) const;

  /// Segment duration in seconds of segment `i` on process `p`.
  double durationSeconds(trace::ProcessId p, std::size_t i) const;

  /// Dense [process][iteration] matrix of SOS-times in seconds; missing
  /// segments (ragged processes) are filled with NaN.
  std::vector<std::vector<double>> sosMatrixSeconds() const;

  /// Dense matrix of segment durations in seconds (NaN for missing).
  std::vector<std::vector<double>> durationMatrixSeconds() const;

  /// Dense matrix of a metric's per-segment delta (NaN for missing).
  std::vector<std::vector<double>> metricMatrix(trace::MetricId m) const;

  /// All SOS values in seconds, flattened (no NaNs).
  std::vector<double> allSosSeconds() const;

  /// Fraction of the summed segment durations spent in synchronization,
  /// per iteration index (averaged over the processes that have that
  /// iteration). This regenerates the paper's "MPI share grows" series.
  std::vector<double> syncFractionPerIteration() const;

  /// Mean segment duration in seconds per iteration index.
  std::vector<double> meanDurationPerIteration() const;

  /// Mean SOS-time in seconds per iteration index.
  std::vector<double> meanSosPerIteration() const;

  /// Per-process totals in seconds: sum of SOS-times over all segments.
  std::vector<double> totalSosPerProcess() const;

  /// Per-process totals of a metric's deltas over all segments.
  std::vector<double> totalMetricPerProcess(trace::MetricId m) const;

  /// The analyzed view. Copies of the view share the backend, so the
  /// result stays valid as long as the underlying storage does (for
  /// borrowed views: as long as the viewed Trace lives).
  const trace::TraceView& trace() const { return view_; }

private:
  trace::TraceView view_;
  trace::FunctionId segmentFunction_;
  std::vector<std::vector<SegmentAnalysis>> perProcess_;
};

/// Run the SOS analysis: segment every process by `segmentFunction` and
/// compute SOS-times with the given synchronization classifier.
///
/// Lifetime: for a borrowed view (the implicit conversion from Trace&)
/// the trace must outlive the SosResult. Passing a temporary Trace is a
/// compile error; out-of-core and owned views share ownership.
SosResult analyzeSos(const trace::TraceView& trace,
                     trace::FunctionId segmentFunction,
                     const SyncClassifier& classifier = SyncClassifier{});
SosResult analyzeSos(trace::Trace&&, trace::FunctionId,
                     const SyncClassifier& = SyncClassifier{}) = delete;

/// Baseline from the paper's Section V discussion: plain segment durations
/// (no synchronization subtraction). Equivalent to analyzeSos with
/// SyncClassifier::none().
SosResult analyzeSegmentDurations(const trace::TraceView& trace,
                                  trace::FunctionId segmentFunction);
SosResult analyzeSegmentDurations(trace::Trace&&,
                                  trace::FunctionId) = delete;

/// Alternative segmentation for codes without a usable dominant function:
/// fixed time windows of `windowTicks` spanning the whole trace. Every
/// process gets the same windows; a window's "duration" is its span, its
/// syncTime the time covered by maximal synchronization frames inside it.
/// Windows do not align with iterations, so imbalances smear across
/// window boundaries - the ablation benches quantify how much sharper the
/// dominant-function segmentation is. The result's segmentFunction() is
/// trace::kInvalidFunction.
SosResult analyzeSosWindows(const trace::TraceView& trace,
                            trace::Timestamp windowTicks,
                            const SyncClassifier& classifier =
                                SyncClassifier{});
SosResult analyzeSosWindows(trace::Trace&&, trace::Timestamp,
                            const SyncClassifier& = SyncClassifier{}) = delete;

namespace detail {

/// Reusable per-call buffers of analyzeSosProcess. A worker analyzing many
/// ranks passes the same scratch to every call so the metric-state vectors
/// are allocated once per worker instead of once per rank.
struct SosScratch {
  std::vector<double> lastMetric;
  std::vector<bool> seenMetric;
};

/// SOS analysis of a single process (row `p` of analyzeSos): segment the
/// process timeline by `segmentFunction` and compute SOS-time, paradigm
/// breakdown and metric deltas per segment. `syncMask` is the classifier's
/// precomputed per-function decision vector. Both the serial analyzer and
/// the rank-sharded parallel one call this, so their results are identical
/// by construction.
std::vector<SegmentAnalysis> analyzeSosProcess(
    const trace::TraceView& trace, trace::ProcessId p,
    trace::FunctionId segmentFunction, const std::vector<bool>& syncMask);

/// As above with caller-owned scratch buffers (the hot path of the
/// rank-sharded analyzer).
std::vector<SegmentAnalysis> analyzeSosProcess(
    const trace::TraceView& trace, trace::ProcessId p,
    trace::FunctionId segmentFunction, const std::vector<bool>& syncMask,
    SosScratch& scratch);

/// The original std::function-visitor implementation, retained as the
/// differential oracle for the inlined replay kernel (and as perfbench's
/// pre-optimization baseline). Must stay bit-identical to
/// analyzeSosProcess; tests/throughput_test.cpp enforces it.
std::vector<SegmentAnalysis> analyzeSosProcessReference(
    const trace::TraceView& trace, trace::ProcessId p,
    trace::FunctionId segmentFunction, const std::vector<bool>& syncMask);

}  // namespace detail

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_SOS_HPP
