#include "analysis/baselines.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace perfvar::analysis {

std::size_t DetectionOutcome::rankOf(trace::ProcessId process) const {
  for (std::size_t i = 0; i < rankedProcesses.size(); ++i) {
    if (rankedProcesses[i] == process) {
      return i;
    }
  }
  return rankedProcesses.size();
}

double DetectionOutcome::topSeparation() const {
  if (scores.size() < 3) {
    return 0.0;
  }
  const std::vector<double> rest(scores.begin() + 1, scores.end());
  return stats::robustZ(scores.front(), rest);
}

namespace {

DetectionOutcome rankProcesses(std::string method,
                               const std::vector<double>& scoreByProcess) {
  DetectionOutcome out;
  out.method = std::move(method);
  std::vector<trace::ProcessId> order(scoreByProcess.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](trace::ProcessId a, trace::ProcessId b) {
              if (scoreByProcess[a] != scoreByProcess[b]) {
                return scoreByProcess[a] > scoreByProcess[b];
              }
              return a < b;
            });
  out.rankedProcesses = order;
  out.scores.reserve(order.size());
  for (const auto p : order) {
    out.scores.push_back(scoreByProcess[p]);
  }
  return out;
}

}  // namespace

DetectionOutcome detectByProfile(const trace::TraceView& tr,
                                 const SyncClassifier& classifier) {
  const auto profile = profile::FlatProfile::build(tr);
  std::vector<bool> keep = classifier.mask(tr);
  keep.flip();  // keep everything that is NOT synchronization
  const auto exclusive = profile.exclusiveTimePerProcess(keep);
  std::vector<double> scores(exclusive.size());
  for (std::size_t p = 0; p < exclusive.size(); ++p) {
    scores[p] = tr.toSeconds(exclusive[p]);
  }
  return rankProcesses("profile-only", scores);
}

DetectionOutcome outcomeFromSos(const SosResult& sos,
                                const std::string& name) {
  DetectionOutcome out = rankProcesses(name, sos.totalSosPerProcess());
  const VariationReport report = analyzeVariation(sos);
  if (!report.hotspots.empty()) {
    out.suspiciousIteration = report.hotspots.front().iteration;
  } else if (!report.iterations.empty()) {
    const auto it = std::max_element(
        report.iterations.begin(), report.iterations.end(),
        [](const IterationStats& a, const IterationStats& b) {
          return a.meanSos < b.meanSos;
        });
    out.suspiciousIteration = it->iteration;
  }
  return out;
}

DetectionOutcome detectBySegmentDuration(const trace::TraceView& tr,
                                         trace::FunctionId segmentFunction) {
  const SosResult durations = analyzeSegmentDurations(tr, segmentFunction);
  return outcomeFromSos(durations, "segment-duration");
}

DetectionOutcome detectBySos(const trace::TraceView& tr,
                             trace::FunctionId segmentFunction,
                             const SyncClassifier& classifier) {
  const SosResult sos = analyzeSos(tr, segmentFunction, classifier);
  return outcomeFromSos(sos, "sos-time");
}

}  // namespace perfvar::analysis
