#include "analysis/correlate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"

namespace perfvar::analysis {

MetricCorrelation correlateMetric(const SosResult& sos,
                                  trace::MetricId metric) {
  PERFVAR_REQUIRE(metric < sos.trace().metrics().size(), "invalid metric id");
  MetricCorrelation c;
  c.metric = metric;

  std::vector<double> segSos;
  std::vector<double> segMetric;
  const double res = static_cast<double>(sos.trace().resolution());
  for (const auto& per : sos.all()) {
    for (const auto& a : per) {
      segSos.push_back(static_cast<double>(a.sosTime) / res);
      segMetric.push_back(metric < a.metricDelta.size() ? a.metricDelta[metric]
                                                        : 0.0);
    }
  }
  c.segmentPairs = segSos.size();
  c.segmentPearson = stats::pearson(segSos, segMetric);
  c.segmentSpearman = stats::spearman(segSos, segMetric);

  const std::vector<double> procSos = sos.totalSosPerProcess();
  const std::vector<double> procMetric = sos.totalMetricPerProcess(metric);
  c.processPearson = stats::pearson(procSos, procMetric);
  c.processSpearman = stats::spearman(procSos, procMetric);

  if (!procSos.empty()) {
    const std::size_t topSos = static_cast<std::size_t>(
        std::max_element(procSos.begin(), procSos.end()) - procSos.begin());
    const std::size_t topMetric = static_cast<std::size_t>(
        std::max_element(procMetric.begin(), procMetric.end()) -
        procMetric.begin());
    c.topProcessMatches = topSos == topMetric;
  }
  return c;
}

std::vector<MetricCorrelation> correlateAllMetrics(const SosResult& sos) {
  std::vector<MetricCorrelation> out;
  for (std::size_t m = 0; m < sos.trace().metrics().size(); ++m) {
    const auto totals =
        sos.totalMetricPerProcess(static_cast<trace::MetricId>(m));
    const bool anySample =
        std::any_of(totals.begin(), totals.end(),
                    [](double v) { return v != 0.0; });
    if (!anySample) {
      continue;
    }
    out.push_back(correlateMetric(sos, static_cast<trace::MetricId>(m)));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricCorrelation& a, const MetricCorrelation& b) {
              return std::abs(a.processPearson) > std::abs(b.processPearson);
            });
  return out;
}

std::string formatCorrelation(const trace::TraceView& tr,
                              const MetricCorrelation& c) {
  std::ostringstream os;
  os << tr.metrics().name(c.metric) << ": per-process Pearson "
     << fmt::fixed(c.processPearson, 3) << ", Spearman "
     << fmt::fixed(c.processSpearman, 3) << "; per-segment Pearson "
     << fmt::fixed(c.segmentPearson, 3) << " over " << c.segmentPairs
     << " segments"
     << (c.topProcessMatches ? "; hottest process matches" : "");
  return os.str();
}

}  // namespace perfvar::analysis
