#include "analysis/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"

namespace perfvar::analysis {

namespace {

struct Point {
  double sos = 0.0;   // normalized
  double rate = 0.0;  // normalized (0 when no rate metric)
  std::size_t process = 0;
  std::size_t index = 0;
  double rawSos = 0.0;
  double rawRate = 0.0;
};

double sq(double v) {
  return v * v;
}

/// Min-max normalize one feature across all points (degenerate -> 0.5).
void normalizeFeature(std::vector<Point>& points, double Point::* raw,
                      double Point::* norm) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Point& pt : points) {
    lo = std::min(lo, pt.*raw);
    hi = std::max(hi, pt.*raw);
  }
  for (Point& pt : points) {
    pt.*norm = hi > lo ? (pt.*raw - lo) / (hi - lo) : 0.5;
  }
}

}  // namespace

std::uint32_t ClusterResult::slowestCluster() const {
  PERFVAR_REQUIRE(!clusters.empty(), "empty clustering");
  std::uint32_t best = 0;
  for (std::uint32_t c = 1; c < clusters.size(); ++c) {
    if (clusters[c].meanSos > clusters[best].meanSos) {
      best = c;
    }
  }
  return best;
}

double ClusterResult::fraction(std::uint32_t cluster) const {
  PERFVAR_REQUIRE(cluster < clusters.size(), "invalid cluster id");
  std::size_t total = 0;
  for (const auto& info : clusters) {
    total += info.size;
  }
  return total > 0 ? static_cast<double>(clusters[cluster].size) /
                         static_cast<double>(total)
                   : 0.0;
}

ClusterResult clusterSegments(const SosResult& sos,
                              const ClusterOptions& options) {
  PERFVAR_REQUIRE(options.clusters >= 1, "need at least one cluster");
  const auto& tr = sos.trace();
  const double res = static_cast<double>(tr.resolution());

  // Collect feature points.
  std::vector<Point> points;
  for (std::size_t p = 0; p < sos.processCount(); ++p) {
    const auto& per = sos.process(static_cast<trace::ProcessId>(p));
    for (std::size_t i = 0; i < per.size(); ++i) {
      Point pt;
      pt.process = p;
      pt.index = i;
      pt.rawSos = static_cast<double>(per[i].sosTime) / res;
      if (options.rateMetric) {
        PERFVAR_REQUIRE(*options.rateMetric < tr.metrics().size(),
                        "invalid rate metric");
        const double duration =
            static_cast<double>(per[i].segment.inclusive()) / res;
        const double delta =
            *options.rateMetric < per[i].metricDelta.size()
                ? per[i].metricDelta[*options.rateMetric]
                : 0.0;
        pt.rawRate = duration > 0.0 ? delta / duration : 0.0;
      }
      points.push_back(pt);
    }
  }
  PERFVAR_REQUIRE(points.size() >= options.clusters,
                  "fewer segments than clusters");

  normalizeFeature(points, &Point::rawSos, &Point::sos);
  if (options.rateMetric) {
    normalizeFeature(points, &Point::rawRate, &Point::rate);
  }

  // Deterministic seeding: centroids at the SOS-feature quantiles.
  const std::size_t k = options.clusters;
  std::vector<double> sosValues;
  sosValues.reserve(points.size());
  for (const Point& pt : points) {
    sosValues.push_back(pt.sos);
  }
  std::vector<double> rateValues;
  if (options.rateMetric) {
    rateValues.reserve(points.size());
    for (const Point& pt : points) {
      rateValues.push_back(pt.rate);
    }
  }
  std::vector<double> centroidSos(k);
  std::vector<double> centroidRate(k, 0.5);
  for (std::size_t c = 0; c < k; ++c) {
    const double q = k > 1 ? static_cast<double>(c) /
                                 static_cast<double>(k - 1)
                           : 0.5;
    centroidSos[c] = stats::quantile(sosValues, q);
    if (options.rateMetric) {
      // Spread the second feature as well; otherwise identical seeds
      // collapse all points into one cluster when SOS is constant.
      centroidRate[c] = stats::quantile(rateValues, q);
    }
  }

  // Lloyd iterations.
  std::vector<std::uint32_t> label(points.size(), 0);
  std::size_t iterations = 0;
  for (; iterations < options.maxIterations; ++iterations) {
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::uint32_t bestC = 0;
      for (std::uint32_t c = 0; c < k; ++c) {
        const double d = sq(points[i].sos - centroidSos[c]) +
                         sq(points[i].rate - centroidRate[c]);
        if (d < best) {
          best = d;
          bestC = c;
        }
      }
      if (label[i] != bestC) {
        label[i] = bestC;
        changed = true;
      }
    }
    if (!changed && iterations > 0) {
      break;
    }
    // Recompute centroids; empty clusters keep their position.
    std::vector<double> sumSos(k, 0.0);
    std::vector<double> sumRate(k, 0.0);
    std::vector<std::size_t> count(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sumSos[label[i]] += points[i].sos;
      sumRate[label[i]] += points[i].rate;
      ++count[label[i]];
    }
    for (std::uint32_t c = 0; c < k; ++c) {
      if (count[c] > 0) {
        centroidSos[c] = sumSos[c] / static_cast<double>(count[c]);
        centroidRate[c] = sumRate[c] / static_cast<double>(count[c]);
      }
    }
  }

  // Relabel clusters by ascending mean raw SOS for a stable presentation.
  std::vector<double> meanRaw(k, 0.0);
  std::vector<std::size_t> count(k, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    meanRaw[label[i]] += points[i].rawSos;
    ++count[label[i]];
  }
  for (std::uint32_t c = 0; c < k; ++c) {
    meanRaw[c] = count[c] > 0 ? meanRaw[c] / static_cast<double>(count[c])
                              : std::numeric_limits<double>::infinity();
  }
  std::vector<std::uint32_t> order(k);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return meanRaw[a] < meanRaw[b];
  });
  std::vector<std::uint32_t> newLabel(k);
  for (std::uint32_t rank = 0; rank < k; ++rank) {
    newLabel[order[rank]] = rank;
  }

  ClusterResult result;
  result.iterations = iterations;
  result.assignment.resize(sos.processCount());
  for (std::size_t p = 0; p < sos.processCount(); ++p) {
    result.assignment[p].resize(
        sos.process(static_cast<trace::ProcessId>(p)).size());
  }
  result.clusters.resize(k);
  for (std::uint32_t rank = 0; rank < k; ++rank) {
    const std::uint32_t old = order[rank];
    result.clusters[rank].centroidSos = centroidSos[old];
    result.clusters[rank].centroidRate = centroidRate[old];
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint32_t c = newLabel[label[i]];
    result.assignment[points[i].process][points[i].index] = c;
    auto& info = result.clusters[c];
    ++info.size;
    info.meanSos += points[i].rawSos;
    info.meanRate += points[i].rawRate;
  }
  for (auto& info : result.clusters) {
    if (info.size > 0) {
      info.meanSos /= static_cast<double>(info.size);
      info.meanRate /= static_cast<double>(info.size);
    }
  }
  return result;
}

std::string formatClusters(const ClusterResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"cluster", "segments", "share", "mean SOS", "mean rate"});
  for (std::size_t c = 0; c < result.clusters.size(); ++c) {
    const auto& info = result.clusters[c];
    rows.push_back({std::to_string(c), std::to_string(info.size),
                    fmt::percent(result.fraction(static_cast<std::uint32_t>(c))),
                    fmt::seconds(info.meanSos), fmt::fixed(info.meanRate, 3)});
  }
  return fmt::table(rows);
}

}  // namespace perfvar::analysis
