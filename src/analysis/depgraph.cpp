/// \file depgraph.cpp
/// Happens-before graph construction and the three dependency detectors
/// (see depgraph.hpp for the model and the determinism/robustness
/// contracts).

#include "analysis/depgraph.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <limits>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

#include "util/error.hpp"
#include "util/json_writer.hpp"
#include "util/thread_pool.hpp"

namespace perfvar::analysis {

namespace {

/// One open frame of the tolerant stack replay.
struct Frame {
  trace::FunctionId function = trace::kInvalidFunction;
  trace::Timestamp enter = 0;
  bool sync = false;
};

/// Nodes and attribution of one rank, before the serial merge. A pure
/// function of (rank stream, sync mask), so the per-rank phase shards
/// freely without affecting the result.
struct RankShard {
  std::vector<DepNode> nodes;
  std::vector<FunctionTicks> attribution;
};

/// Accumulate `ticks` of exclusive time in `function` into the pending
/// attribution list (insertion order; intervals touch few functions, so
/// the linear scan beats a map).
void addAttribution(std::vector<FunctionTicks>& pending,
                    trace::FunctionId function, std::uint64_t ticks) {
  if (ticks == 0) {
    return;
  }
  for (FunctionTicks& entry : pending) {
    if (entry.function == function) {
      entry.ticks += ticks;
      return;
    }
  }
  pending.push_back(FunctionTicks{function, ticks});
}

/// Extract the nodes of one rank: tolerant enter/leave replay (hostile
/// streams never throw — unmatched leaves and dangling refs degrade to
/// "outside any function"), per-function attribution between consecutive
/// nodes, and the waitStart of receives from the innermost enclosing
/// sync-classified region.
RankShard extractRank(const trace::TraceView& view, trace::ProcessId rank,
                      std::size_t functionCount,
                      const std::vector<bool>& syncMask) {
  RankShard shard;
  const trace::RankPin pin = view.rank(rank);
  const trace::EventSpan events = pin.events();

  std::vector<Frame> stack;
  std::vector<FunctionTicks> pending;
  const trace::Timestamp first = events.size() > 0 ? events[0].time : 0;

  const auto flushNode = [&](DepNode node) {
    node.process = rank;
    node.attrBegin = static_cast<std::uint32_t>(shard.attribution.size());
    node.attrCount = static_cast<std::uint32_t>(pending.size());
    shard.attribution.insert(shard.attribution.end(), pending.begin(),
                             pending.end());
    pending.clear();
    shard.nodes.push_back(node);
  };

  DepNode start;
  start.kind = DepNodeKind::RankStart;
  start.time = start.waitStart = first;
  flushNode(start);

  trace::Timestamp cursor = first;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const trace::Event& e = events[i];
    const trace::Timestamp t = e.time;
    if (t > cursor) {
      const trace::FunctionId top =
          stack.empty() ? trace::kInvalidFunction : stack.back().function;
      addAttribution(pending, top, t - cursor);
      cursor = t;
    }
    switch (e.kind) {
      case trace::EventKind::Enter: {
        Frame frame;
        frame.function = e.ref < functionCount ? e.ref
                                               : trace::kInvalidFunction;
        frame.enter = t;
        frame.sync = frame.function != trace::kInvalidFunction &&
                     syncMask[frame.function];
        stack.push_back(frame);
        break;
      }
      case trace::EventKind::Leave:
        if (!stack.empty()) {
          stack.pop_back();
        }
        break;
      case trace::EventKind::MpiSend:
      case trace::EventKind::MpiRecv: {
        DepNode node;
        node.kind = e.kind == trace::EventKind::MpiSend ? DepNodeKind::Send
                                                        : DepNodeKind::Recv;
        node.time = t;
        node.eventIndex = static_cast<std::int64_t>(i);
        node.peer = e.ref;
        node.tag = e.aux;
        node.function =
            stack.empty() ? trace::kInvalidFunction : stack.back().function;
        node.waitStart = t;
        if (node.kind == DepNodeKind::Recv) {
          for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->sync) {
              node.waitStart = std::min(it->enter, t);
              break;
            }
          }
        }
        flushNode(node);
        break;
      }
      case trace::EventKind::Metric:
        break;
    }
  }

  DepNode end;
  end.kind = DepNodeKind::RankEnd;
  end.time = end.waitStart = cursor;
  flushNode(end);
  return shard;
}

std::uint64_t packChannelRank(trace::ProcessId a) {
  return static_cast<std::uint64_t>(a);
}

}  // namespace

const char* depNodeKindName(DepNodeKind k) {
  switch (k) {
    case DepNodeKind::RankStart:
      return "start";
    case DepNodeKind::Send:
      return "send";
    case DepNodeKind::Recv:
      return "recv";
    case DepNodeKind::RankEnd:
      return "end";
  }
  return "?";
}

DepGraph buildDepGraph(const trace::TraceView& trace,
                       const DepGraphOptions& options) {
  DepGraph graph;
  graph.processCount = trace.processCount();
  graph.functionCount = trace.functions().size();

  const std::vector<bool> syncMask = options.sync.mask(trace);

  // Per-rank phase: every rank writes its own shard, so the result is
  // independent of scheduling (parallelChunks' chunk boundaries depend
  // only on n and grain, and shards merge in rank order below).
  std::vector<RankShard> shards(graph.processCount);
  util::ThreadPool* pool = options.pool;
  std::unique_ptr<util::ThreadPool> owned;
  if (pool == nullptr && options.threads != 1) {
    owned = std::make_unique<util::ThreadPool>(options.threads);
    pool = owned.get();
  }
  util::parallelChunks(pool, graph.processCount,
                       std::max<std::size_t>(1, options.grainSizeRanks),
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t p = begin; p < end; ++p) {
                           shards[p] = extractRank(
                               trace, static_cast<trace::ProcessId>(p),
                               graph.functionCount, syncMask);
                         }
                       });

  // Serial merge in rank order: global node indices, prev links, and the
  // shared attribution pool.
  std::size_t totalNodes = 0;
  std::size_t totalAttr = 0;
  for (const RankShard& shard : shards) {
    totalNodes += shard.nodes.size();
    totalAttr += shard.attribution.size();
  }
  graph.nodes.reserve(totalNodes);
  graph.attribution.reserve(totalAttr);
  graph.rankNodes.reserve(graph.processCount);
  for (RankShard& shard : shards) {
    const std::size_t base = graph.nodes.size();
    const std::size_t attrBase = graph.attribution.size();
    graph.rankNodes.emplace_back(base, base + shard.nodes.size());
    for (std::size_t j = 0; j < shard.nodes.size(); ++j) {
      DepNode node = shard.nodes[j];
      node.prev = j == 0 ? -1 : static_cast<std::int64_t>(base + j - 1);
      // The per-node slice must stay addressable through a uint32 offset;
      // a pool beyond that (a >4G-entry trace) drops further attribution
      // rather than failing — the robustness contract over precision.
      const std::size_t attrBegin = attrBase + node.attrBegin;
      if (attrBegin + node.attrCount <=
          std::numeric_limits<std::uint32_t>::max()) {
        node.attrBegin = static_cast<std::uint32_t>(attrBegin);
      } else {
        node.attrBegin = 0;
        node.attrCount = 0;
      }
      graph.nodes.push_back(node);
    }
    graph.attribution.insert(graph.attribution.end(),
                             shard.attribution.begin(),
                             shard.attribution.end());
    shard = RankShard{};  // release as we go; shards can be large
  }

  // Trace extent from the sentinels (ranks with no events contribute the
  // empty [0, 0] span and are ignored).
  bool haveExtent = false;
  for (std::size_t p = 0; p < graph.processCount; ++p) {
    const auto [begin, end] = graph.rankNodes[p];
    if (end - begin <= 2 && graph.nodes[begin].time == graph.nodes[end - 1].time &&
        graph.nodes[begin].time == 0) {
      continue;
    }
    const trace::Timestamp s = graph.nodes[begin].time;
    const trace::Timestamp e = graph.nodes[end - 1].time;
    if (!haveExtent) {
      graph.startTime = s;
      graph.endTime = e;
      haveExtent = true;
    } else {
      graph.startTime = std::min(graph.startTime, s);
      graph.endTime = std::max(graph.endTime, e);
    }
  }

  // Matching phase (serial, deterministic): FIFO per (sender, receiver,
  // tag) channel — the MPI non-overtaking guarantee. Node order within a
  // channel is stream order on the one rank that feeds it, so the k-th
  // send pairs with the k-th receive.
  struct Channel {
    std::vector<std::size_t> sends;
    std::vector<std::size_t> recvs;
  };
  std::map<std::array<std::uint64_t, 3>, Channel> channels;
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    const DepNode& node = graph.nodes[i];
    if (node.kind != DepNodeKind::Send && node.kind != DepNodeKind::Recv) {
      continue;
    }
    const bool isSend = node.kind == DepNodeKind::Send;
    (isSend ? graph.stats.sendEvents : graph.stats.recvEvents) += 1;
    if (node.peer >= graph.processCount || node.peer == node.process) {
      graph.stats.invalidEndpoints += 1;
      continue;
    }
    const trace::ProcessId sender = isSend ? node.process : node.peer;
    const trace::ProcessId receiver = isSend ? node.peer : node.process;
    Channel& channel = channels[{packChannelRank(sender),
                                 packChannelRank(receiver), node.tag}];
    (isSend ? channel.sends : channel.recvs).push_back(i);
  }
  for (auto& [key, channel] : channels) {
    const std::size_t paired =
        std::min(channel.sends.size(), channel.recvs.size());
    for (std::size_t k = 0; k < paired; ++k) {
      graph.nodes[channel.sends[k]].match =
          static_cast<std::int64_t>(channel.recvs[k]);
      graph.nodes[channel.recvs[k]].match =
          static_cast<std::int64_t>(channel.sends[k]);
    }
    graph.stats.matchedPairs += paired;
    graph.stats.unmatchedSends += channel.sends.size() - paired;
    graph.stats.unmatchedRecvs += channel.recvs.size() - paired;
  }
  return graph;
}

CriticalPathResult extractCriticalPath(const DepGraph& graph) {
  CriticalPathResult result;
  result.rankTicks.assign(graph.processCount, 0);
  result.functionTicks.assign(graph.functionCount + 1, 0);
  if (graph.nodes.empty()) {
    return result;
  }

  // End of the path: the latest RankEnd sentinel (lowest rank on ties).
  std::int64_t end = -1;
  for (std::size_t p = 0; p < graph.processCount; ++p) {
    const auto [begin, rankEnd] = graph.rankNodes[p];
    if (begin == rankEnd) {
      continue;
    }
    const std::int64_t candidate = static_cast<std::int64_t>(rankEnd) - 1;
    if (end < 0 || graph.nodes[candidate].time > graph.nodes[end].time) {
      end = candidate;
    }
  }
  if (end < 0) {
    return result;
  }
  result.pathEnd = graph.nodes[end].time;
  result.endProcess = graph.nodes[end].process;
  result.pathStart = result.pathEnd;

  const auto attributeLocal = [&](const DepNode& node) {
    std::uint64_t local = 0;
    for (std::uint32_t a = 0; a < node.attrCount; ++a) {
      const FunctionTicks& entry = graph.attribution[node.attrBegin + a];
      const std::size_t bucket =
          entry.function < graph.functionCount
              ? static_cast<std::size_t>(entry.function)
              : graph.functionCount;
      result.functionTicks[bucket] += entry.ticks;
      local += entry.ticks;
    }
    if (node.process < graph.processCount) {
      result.rankTicks[node.process] += local;
    }
    return local;
  };

  // Backward walk: at every node follow the dependency that completed
  // last. The visited guard makes cyclic timestamps on hostile input
  // terminate (times are strictly decreasing on well-formed traces, so it
  // never fires there).
  std::vector<bool> visited(graph.nodes.size(), false);
  std::vector<CriticalPathStep> reversed;
  std::int64_t cur = end;
  while (cur >= 0) {
    if (visited[static_cast<std::size_t>(cur)]) {
      result.truncated = true;
      result.pathStart = graph.nodes[cur].time;
      break;
    }
    visited[static_cast<std::size_t>(cur)] = true;
    const DepNode& v = graph.nodes[cur];

    bool remote = false;
    std::int64_t pred = v.prev;
    if (v.kind == DepNodeKind::Recv && v.match >= 0 &&
        graph.nodes[v.match].time > v.waitStart) {
      // The message departed after the receiver was ready: the sender was
      // the binding dependency. Equal times prefer the local edge — a
      // total, thread-count-independent tie-break.
      remote = true;
      pred = v.match;
    }
    if (pred < 0) {
      result.pathStart = v.time;
      break;
    }

    const DepNode& u = graph.nodes[pred];
    CriticalPathStep step;
    step.node = cur;
    step.process = v.process;
    step.fromProcess = u.process;
    step.fromTime = u.time;
    step.toTime = v.time;
    step.remote = remote;
    if (remote) {
      result.remoteTicks += step.ticks();
    } else {
      attributeLocal(v);
    }
    reversed.push_back(step);
    cur = pred;
  }

  result.steps.assign(reversed.rbegin(), reversed.rend());
  result.accountedTicks = result.remoteTicks;
  for (const std::uint64_t t : result.rankTicks) {
    result.accountedTicks += t;
  }
  return result;
}

SerializationReport detectSerialization(const DepGraph& graph,
                                        const CriticalPathResult& path,
                                        const SerializationOptions& options) {
  SerializationReport report;
  report.accountedTicks = path.accountedTicks;
  const double denom =
      path.accountedTicks > 0 ? static_cast<double>(path.accountedTicks) : 1.0;
  report.remoteShare = static_cast<double>(path.remoteTicks) / denom;

  for (std::size_t p = 0; p < path.rankTicks.size(); ++p) {
    if (path.rankTicks[p] == 0) {
      continue;
    }
    RankCriticality entry;
    entry.process = static_cast<trace::ProcessId>(p);
    entry.ticks = path.rankTicks[p];
    entry.share = static_cast<double>(entry.ticks) / denom;
    report.ranks.push_back(entry);
  }
  std::sort(report.ranks.begin(), report.ranks.end(),
            [](const RankCriticality& a, const RankCriticality& b) {
              if (a.ticks != b.ticks) {
                return a.ticks > b.ticks;
              }
              return a.process < b.process;
            });

  // A path confined to one rank is indistinguishable from plain
  // longest-rank runtime: without a traversed cross-rank dependency the
  // per-rank share carries no serialization evidence (the variation
  // pipeline already covers per-rank imbalance). Genuine whole-run
  // serialization always ends with a late receive hopping onto the
  // culprit, so it spans at least two ranks.
  std::size_t pathRanks = 0;
  for (const std::uint64_t ticks : path.rankTicks) {
    pathRanks += ticks > 0;
  }
  const bool active = graph.processCount >= options.minProcesses &&
                      path.accountedTicks > 0 && pathRanks >= 2;
  if (active) {
    for (const RankCriticality& entry : report.ranks) {
      if (entry.share >= options.rankShareThreshold) {
        report.dominatedRanks.push_back(entry);
      }
    }
  }

  // (rank, function) regions: re-read the attribution slices of the local
  // steps; std::map keys give the deterministic accumulation order.
  std::map<std::pair<trace::ProcessId, trace::FunctionId>, std::uint64_t>
      regions;
  for (const CriticalPathStep& step : path.steps) {
    if (step.remote || step.node < 0) {
      continue;
    }
    const DepNode& node = graph.nodes[step.node];
    for (std::uint32_t a = 0; a < node.attrCount; ++a) {
      const FunctionTicks& entry = graph.attribution[node.attrBegin + a];
      const trace::FunctionId fn = entry.function < graph.functionCount
                                       ? entry.function
                                       : trace::kInvalidFunction;
      regions[{node.process, fn}] += entry.ticks;
    }
  }
  if (active) {
    for (const auto& [key, ticks] : regions) {
      const double share = static_cast<double>(ticks) / denom;
      if (share < options.functionShareThreshold) {
        continue;
      }
      RegionCriticality region;
      region.process = key.first;
      region.function = key.second;
      region.ticks = ticks;
      region.share = share;
      report.bottlenecks.push_back(region);
    }
    std::sort(report.bottlenecks.begin(), report.bottlenecks.end(),
              [](const RegionCriticality& a, const RegionCriticality& b) {
                if (a.ticks != b.ticks) {
                  return a.ticks > b.ticks;
                }
                if (a.process != b.process) {
                  return a.process < b.process;
                }
                return a.function < b.function;
              });
  }
  return report;
}

IdleWaveReport detectIdleWaves(const DepGraph& graph,
                               const IdleWaveOptions& options) {
  IdleWaveReport report;
  const std::uint64_t duration =
      graph.endTime > graph.startTime ? graph.endTime - graph.startTime : 0;
  std::uint64_t floor = options.minWaitTicks;
  if (options.minWaitShare > 0.0 && duration > 0) {
    const double relative = options.minWaitShare * static_cast<double>(duration);
    if (relative > static_cast<double>(floor)) {
      floor = static_cast<std::uint64_t>(relative);
    }
  }
  floor = std::max<std::uint64_t>(floor, 1);
  report.effectiveMinWaitTicks = floor;

  /// A receive that completed late because its matched send departed
  /// after the receiver was already waiting.
  struct Arrival {
    std::size_t node = 0;
    trace::Timestamp complete = 0;
    trace::Timestamp sendTime = 0;
    trace::Timestamp waitStart = 0;
    std::uint64_t wait = 0;
    trace::ProcessId rank = 0;
    trace::ProcessId from = 0;
  };
  std::vector<Arrival> arrivals;
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    const DepNode& v = graph.nodes[i];
    if (v.kind != DepNodeKind::Recv || v.match < 0) {
      continue;
    }
    const DepNode& u = graph.nodes[v.match];
    if (u.time <= v.waitStart || u.time - v.waitStart < floor) {
      continue;
    }
    Arrival a;
    a.node = i;
    a.complete = v.time;
    a.sendTime = u.time;
    a.waitStart = v.waitStart;
    a.wait = u.time - v.waitStart;
    a.rank = v.process;
    a.from = u.process;
    arrivals.push_back(a);
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              if (a.complete != b.complete) {
                return a.complete < b.complete;
              }
              if (a.rank != b.rank) {
                return a.rank < b.rank;
              }
              return a.node < b.node;
            });
  report.lateArrivals = arrivals.size();

  // Chain building, one sweep in completion order: an arrival whose
  // sender was itself delayed earlier joins the sender's wave; otherwise
  // the sender rank is a wave origin. Chains sharing an origin merge
  // (e.g. the two fronts of a stencil wave).
  struct WaveBuild {
    IdleWave wave;
    std::set<trace::ProcessId> ranks;
  };
  std::vector<WaveBuild> waves;
  std::map<trace::ProcessId, std::size_t> waveByOrigin;
  std::vector<std::vector<std::pair<trace::Timestamp, std::size_t>>> byRank(
      graph.processCount);
  for (const Arrival& a : arrivals) {
    std::size_t waveIndex;
    const auto& senderArrivals = byRank[a.from];
    // Latest processed late arrival on the sender before the send left.
    const auto it = std::upper_bound(
        senderArrivals.begin(), senderArrivals.end(),
        std::make_pair(a.sendTime,
                       std::numeric_limits<std::size_t>::max()));
    if (it != senderArrivals.begin()) {
      waveIndex = std::prev(it)->second;
    } else {
      const auto [originIt, created] =
          waveByOrigin.try_emplace(a.from, waves.size());
      if (created) {
        waves.emplace_back();
        waves.back().wave.origin = a.from;
        waves.back().wave.firstTime = a.waitStart;
        waves.back().wave.lastTime = a.complete;
        waves.back().ranks.insert(a.from);
      }
      waveIndex = originIt->second;
    }
    WaveBuild& build = waves[waveIndex];
    IdleWaveHop hop;
    hop.process = a.rank;
    hop.fromProcess = a.from;
    hop.waitStart = a.waitStart;
    hop.arriveTime = a.complete;
    hop.waitTicks = a.wait;
    build.wave.hops.push_back(hop);
    build.wave.firstTime = std::min(build.wave.firstTime, a.waitStart);
    build.wave.lastTime = std::max(build.wave.lastTime, a.complete);
    build.wave.maxWaitTicks = std::max(build.wave.maxWaitTicks, a.wait);
    build.ranks.insert(a.rank);
    byRank[a.rank].emplace_back(a.complete, waveIndex);
  }

  for (WaveBuild& build : waves) {
    build.wave.distinctRanks = build.ranks.size();
    if (build.wave.distinctRanks >= options.minRanks) {
      report.waves.push_back(std::move(build.wave));
    }
  }
  std::sort(report.waves.begin(), report.waves.end(),
            [](const IdleWave& a, const IdleWave& b) {
              if (a.firstTime != b.firstTime) {
                return a.firstTime < b.firstTime;
              }
              return a.origin < b.origin;
            });
  return report;
}

DepAnalysis analyzeDependencies(const trace::TraceView& trace,
                                const DepAnalysisOptions& options) {
  DepGraphOptions graphOptions;
  graphOptions.sync = options.sync;
  graphOptions.threads = options.threads;
  graphOptions.grainSizeRanks = options.grainSizeRanks;
  graphOptions.pool = options.pool;
  const DepGraph graph = buildDepGraph(trace, graphOptions);

  DepAnalysis analysis;
  analysis.processCount = graph.processCount;
  analysis.graphStats = graph.stats;
  analysis.criticalPath = extractCriticalPath(graph);
  analysis.serialization =
      detectSerialization(graph, analysis.criticalPath, options.serialization);
  analysis.idleWaves = detectIdleWaves(graph, options.idleWave);
  return analysis;
}

namespace {

/// "NN.N%" with one fixed decimal — snprintf so the bytes are independent
/// of stream state and locale.
std::string percent(double share) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", share * 100.0);
  return buf;
}

std::string functionLabel(const trace::TraceView& trace,
                          trace::FunctionId function) {
  if (function >= trace.functions().size()) {
    return "(untracked)";
  }
  return trace.functions().name(function);
}

void writeDepJson(const trace::TraceView& trace, const DepAnalysis& analysis,
                  std::ostream& out) {
  util::JsonWriter w(out);
  const CriticalPathResult& path = analysis.criticalPath;
  w.beginObject();
  w.key("dependency_analysis");
  w.beginObject();

  w.key("graph");
  w.beginObject();
  w.key("processes");
  w.value(static_cast<std::uint64_t>(analysis.processCount));
  w.key("sends");
  w.value(analysis.graphStats.sendEvents);
  w.key("recvs");
  w.value(analysis.graphStats.recvEvents);
  w.key("matched_pairs");
  w.value(analysis.graphStats.matchedPairs);
  w.key("unmatched_sends");
  w.value(analysis.graphStats.unmatchedSends);
  w.key("unmatched_recvs");
  w.value(analysis.graphStats.unmatchedRecvs);
  w.key("invalid_endpoints");
  w.value(analysis.graphStats.invalidEndpoints);
  w.endObject();

  w.key("critical_path");
  w.beginObject();
  w.key("start");
  w.value(path.pathStart);
  w.key("end");
  w.value(path.pathEnd);
  w.key("end_process");
  w.value(static_cast<std::uint64_t>(path.endProcess));
  w.key("accounted_ticks");
  w.value(path.accountedTicks);
  w.key("remote_ticks");
  w.value(path.remoteTicks);
  w.key("truncated");
  w.value(path.truncated);
  w.key("rank_ticks");
  w.beginArray();
  for (const std::uint64_t t : path.rankTicks) {
    w.value(t);
  }
  w.endArray();
  w.key("function_ticks");
  w.beginArray();
  for (std::size_t f = 0; f < path.functionTicks.size(); ++f) {
    if (path.functionTicks[f] == 0) {
      continue;
    }
    w.beginObject();
    w.key("function");
    w.value(functionLabel(trace, f + 1 == path.functionTicks.size()
                                     ? trace::kInvalidFunction
                                     : static_cast<trace::FunctionId>(f)));
    w.key("ticks");
    w.value(path.functionTicks[f]);
    w.endObject();
  }
  w.endArray();
  w.key("steps");
  w.beginArray();
  for (const CriticalPathStep& step : path.steps) {
    w.beginObject();
    w.key("kind");
    w.value(std::string(step.remote ? "remote" : "local"));
    w.key("from_process");
    w.value(static_cast<std::uint64_t>(step.fromProcess));
    w.key("process");
    w.value(static_cast<std::uint64_t>(step.process));
    w.key("from_time");
    w.value(step.fromTime);
    w.key("to_time");
    w.value(step.toTime);
    w.endObject();
  }
  w.endArray();
  w.endObject();

  const SerializationReport& ser = analysis.serialization;
  w.key("serialization");
  w.beginObject();
  w.key("remote_share");
  w.value(ser.remoteShare);
  w.key("ranks");
  w.beginArray();
  for (const RankCriticality& r : ser.ranks) {
    w.beginObject();
    w.key("process");
    w.value(static_cast<std::uint64_t>(r.process));
    w.key("ticks");
    w.value(r.ticks);
    w.key("share");
    w.value(r.share);
    w.endObject();
  }
  w.endArray();
  w.key("dominated_ranks");
  w.beginArray();
  for (const RankCriticality& r : ser.dominatedRanks) {
    w.value(static_cast<std::uint64_t>(r.process));
  }
  w.endArray();
  w.key("bottlenecks");
  w.beginArray();
  for (const RegionCriticality& r : ser.bottlenecks) {
    w.beginObject();
    w.key("process");
    w.value(static_cast<std::uint64_t>(r.process));
    w.key("function");
    w.value(functionLabel(trace, r.function));
    w.key("ticks");
    w.value(r.ticks);
    w.key("share");
    w.value(r.share);
    w.endObject();
  }
  w.endArray();
  w.endObject();

  const IdleWaveReport& waves = analysis.idleWaves;
  w.key("idle_waves");
  w.beginObject();
  w.key("late_arrivals");
  w.value(waves.lateArrivals);
  w.key("min_wait_ticks");
  w.value(waves.effectiveMinWaitTicks);
  w.key("waves");
  w.beginArray();
  for (const IdleWave& wave : waves.waves) {
    w.beginObject();
    w.key("origin");
    w.value(static_cast<std::uint64_t>(wave.origin));
    w.key("ranks");
    w.value(static_cast<std::uint64_t>(wave.distinctRanks));
    w.key("hops");
    w.value(static_cast<std::uint64_t>(wave.hops.size()));
    w.key("first_time");
    w.value(wave.firstTime);
    w.key("last_time");
    w.value(wave.lastTime);
    w.key("max_wait_ticks");
    w.value(wave.maxWaitTicks);
    w.endObject();
  }
  w.endArray();
  w.endObject();

  w.endObject();
  w.endObject();
  out << '\n';
}

void writeDepCsv(const DepAnalysis& analysis, std::ostream& out) {
  out << "step,kind,from_process,process,from_time,to_time,ticks\n";
  const CriticalPathResult& path = analysis.criticalPath;
  for (std::size_t i = 0; i < path.steps.size(); ++i) {
    const CriticalPathStep& step = path.steps[i];
    out << i << ',' << (step.remote ? "remote" : "local") << ','
        << step.fromProcess << ',' << step.process << ',' << step.fromTime
        << ',' << step.toTime << ',' << step.ticks() << '\n';
  }
}

}  // namespace

std::string formatDepAnalysis(const trace::TraceView& trace,
                              const DepAnalysis& analysis) {
  std::ostringstream os;
  const CriticalPathResult& path = analysis.criticalPath;
  const DepGraphStats& stats = analysis.graphStats;
  os << "dependency analysis: " << analysis.processCount << " process(es), "
     << stats.sendEvents << " send(s), " << stats.recvEvents << " recv(s), "
     << stats.matchedPairs << " matched pair(s)";
  if (stats.unmatchedSends + stats.unmatchedRecvs + stats.invalidEndpoints >
      0) {
    os << " (" << stats.unmatchedSends << " unmatched send(s), "
       << stats.unmatchedRecvs << " unmatched recv(s), "
       << stats.invalidEndpoints << " invalid endpoint(s))";
  }
  os << '\n';

  const std::uint64_t span =
      path.pathEnd > path.pathStart ? path.pathEnd - path.pathStart : 0;
  os << "critical path: " << span << " tick(s), ends on rank "
     << path.endProcess << ", " << path.steps.size() << " step(s), remote "
     << percent(path.accountedTicks > 0
                    ? static_cast<double>(path.remoteTicks) /
                          static_cast<double>(path.accountedTicks)
                    : 0.0)
     << '\n';
  if (path.truncated) {
    os << "  (walk truncated: cyclic timestamps; partial path)\n";
  }

  const SerializationReport& ser = analysis.serialization;
  os << "critical-path time by rank (top 8):\n";
  for (std::size_t i = 0; i < ser.ranks.size() && i < 8; ++i) {
    const RankCriticality& r = ser.ranks[i];
    os << "  rank " << r.process << ": " << r.ticks << " tick(s) ("
       << percent(r.share) << ")\n";
  }

  // Per-function ranking, descending ticks (ties: function id ascending).
  std::vector<std::pair<std::uint64_t, std::size_t>> byFunction;
  for (std::size_t f = 0; f < path.functionTicks.size(); ++f) {
    if (path.functionTicks[f] > 0) {
      byFunction.emplace_back(path.functionTicks[f], f);
    }
  }
  std::sort(byFunction.begin(), byFunction.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) {
                return a.first > b.first;
              }
              return a.second < b.second;
            });
  os << "critical-path time by function (top 8):\n";
  for (std::size_t i = 0; i < byFunction.size() && i < 8; ++i) {
    const auto [ticks, f] = byFunction[i];
    const trace::FunctionId fn = f + 1 == path.functionTicks.size()
                                     ? trace::kInvalidFunction
                                     : static_cast<trace::FunctionId>(f);
    os << "  " << functionLabel(trace, fn) << ": " << ticks << " tick(s) ("
       << percent(path.accountedTicks > 0
                      ? static_cast<double>(ticks) /
                            static_cast<double>(path.accountedTicks)
                      : 0.0)
       << ")\n";
  }

  os << "serialization: " << ser.dominatedRanks.size()
     << " dominated rank(s), " << ser.bottlenecks.size()
     << " bottleneck region(s)\n";
  for (const RankCriticality& r : ser.dominatedRanks) {
    os << "  dominated rank " << r.process << ": " << percent(r.share)
       << " of the critical path\n";
  }
  for (const RegionCriticality& r : ser.bottlenecks) {
    os << "  bottleneck rank " << r.process << " '"
       << functionLabel(trace, r.function) << "': " << percent(r.share)
       << " of the critical path\n";
  }

  const IdleWaveReport& waves = analysis.idleWaves;
  os << "idle waves: " << waves.waves.size() << " wave(s), "
     << waves.lateArrivals << " late arrival(s), wait floor "
     << waves.effectiveMinWaitTicks << " tick(s)\n";
  for (const IdleWave& wave : waves.waves) {
    os << "  wave from rank " << wave.origin << ": " << wave.distinctRanks
       << " rank(s), " << wave.hops.size() << " hop(s), t=["
       << wave.firstTime << ".." << wave.lastTime << "], max wait "
       << wave.maxWaitTicks << " tick(s)\n";
  }
  return os.str();
}

void exportDepAnalysis(const trace::TraceView& trace,
                       const DepAnalysis& analysis, ExportFormat format,
                       std::ostream& out) {
  switch (format) {
    case ExportFormat::Text:
      out << formatDepAnalysis(trace, analysis);
      return;
    case ExportFormat::Json:
      writeDepJson(trace, analysis, out);
      return;
    case ExportFormat::Csv:
      writeDepCsv(analysis, out);
      return;
    case ExportFormat::CsvIterations:
    case ExportFormat::CsvHotspots:
      break;
  }
  throw Error(
      "dependency analysis supports the text, json and csv export formats");
}

std::string exportDepAnalysisString(const trace::TraceView& trace,
                                    const DepAnalysis& analysis,
                                    ExportFormat format) {
  std::ostringstream os;
  exportDepAnalysis(trace, analysis, format, os);
  return os.str();
}

}  // namespace perfvar::analysis
