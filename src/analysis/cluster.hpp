#ifndef PERFVAR_ANALYSIS_CLUSTER_HPP
#define PERFVAR_ANALYSIS_CLUSTER_HPP

/// \file cluster.hpp
/// Computation-phase clustering (the Paraver-style baseline).
///
/// The paper's related work discusses an extension of the Paraver suite
/// (Gonzalez et al., IPDPS 2009) that clusters computation phases by
/// performance characteristics, and notes its limitation: "it does not
/// highlight individual variations within processes". This module
/// implements that approach - k-means over per-segment feature vectors
/// (SOS-time, optionally a counter rate) - so the benches can compare it
/// against the SOS hotspot analysis on equal footing.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/sos.hpp"

namespace perfvar::analysis {

/// Options of the segment clustering.
struct ClusterOptions {
  std::size_t clusters = 3;
  /// Optional counter: the second feature dimension becomes
  /// metricDelta / segment duration (a rate, like instructions/second).
  std::optional<trace::MetricId> rateMetric;
  std::size_t maxIterations = 100;
};

/// Statistics of one cluster.
struct ClusterInfo {
  std::size_t size = 0;
  double meanSos = 0.0;       ///< seconds
  double meanRate = 0.0;      ///< only meaningful with rateMetric
  double centroidSos = 0.0;   ///< in normalized feature space
  double centroidRate = 0.0;
};

/// Result of clustering all segments of an SOS analysis.
struct ClusterResult {
  /// assignment[process][segmentIndex] = cluster id.
  std::vector<std::vector<std::uint32_t>> assignment;
  std::vector<ClusterInfo> clusters;  ///< ordered by ascending mean SOS
  std::size_t iterations = 0;

  /// Cluster id with the highest mean SOS (the "slow phase").
  std::uint32_t slowestCluster() const;

  /// Fraction of all segments assigned to `cluster`.
  double fraction(std::uint32_t cluster) const;
};

/// Cluster the segments of an SOS analysis with deterministic
/// (quantile-seeded) k-means. Throws if there are fewer segments than
/// clusters.
ClusterResult clusterSegments(const SosResult& sos,
                              const ClusterOptions& options = {});

/// Render a summary table of the clustering.
std::string formatClusters(const ClusterResult& result);

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_CLUSTER_HPP
