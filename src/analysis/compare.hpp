#ifndef PERFVAR_ANALYSIS_COMPARE_HPP
#define PERFVAR_ANALYSIS_COMPARE_HPP

/// \file compare.hpp
/// Cross-run comparison of SOS analyses.
///
/// The paper's related work cites alignment-based metrics for comparing
/// traces of different runs (Weber et al., Euro-Par 2013) to judge
/// optimizations. This module provides the iteration-aligned comparison
/// an analyst performs after applying a fix - e.g. COSMO-SPECS (static
/// decomposition) vs. COSMO-SPECS+FD4 (dynamic balancing), the remedy the
/// paper's first case study recommends.

#include <string>
#include <vector>

#include "analysis/sos.hpp"

namespace perfvar::analysis {

/// Iteration-aligned comparison of two runs (A = baseline, B = candidate).
struct RunComparison {
  std::size_t iterationsCompared = 0;  ///< min of both runs

  /// Per-iteration mean segment durations (seconds).
  std::vector<double> meanDurationA;
  std::vector<double> meanDurationB;
  /// Per-iteration speedup duration(A)/duration(B); > 1 = B faster.
  std::vector<double> speedupPerIteration;

  double totalDurationA = 0.0;  ///< summed mean iteration durations
  double totalDurationB = 0.0;
  double overallSpeedup = 0.0;

  /// Mean per-iteration load-imbalance lambda of the SOS-times.
  double meanImbalanceA = 0.0;
  double meanImbalanceB = 0.0;

  /// Overall synchronization share (sync time / duration, all segments).
  double syncShareA = 0.0;
  double syncShareB = 0.0;
};

/// Compare two SOS results iteration by iteration. The runs may have
/// different process counts and iteration counts (the shared prefix is
/// compared). Throws if either run has no segments.
RunComparison compareRuns(const SosResult& baseline, const SosResult& candidate);

/// Render a compact comparison report.
std::string formatComparison(const RunComparison& comparison,
                             const std::string& nameA = "baseline",
                             const std::string& nameB = "candidate");

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_COMPARE_HPP
