#include "analysis/parallel.hpp"

#include <utility>
#include <vector>

#include "util/error.hpp"

namespace perfvar::analysis {

namespace {

/// Pool-backed IndexRunner for the variation loops: chunks of `grain`
/// indices per task, bodies write disjoint slots.
detail::IndexRunner poolRunner(util::ThreadPool& pool, std::size_t grain) {
  return [&pool, grain](std::size_t n,
                        const std::function<void(std::size_t)>& body) {
    util::parallelChunks(&pool, n, grain,
                         [&body](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             body(i);
                           }
                         });
  };
}

}  // namespace

profile::FlatProfile buildProfileParallel(const trace::TraceView& tr,
                                          util::ThreadPool& pool,
                                          std::size_t grainRanks) {
  std::vector<std::vector<profile::FunctionStats>> perProcess(
      tr.processCount());
  util::parallelChunks(&pool, tr.processCount(), grainRanks,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t p = begin; p < end; ++p) {
                           perProcess[p] = profile::FlatProfile::buildProcess(
                               tr, static_cast<trace::ProcessId>(p));
                         }
                       });
  return profile::FlatProfile::fromPerProcess(tr, std::move(perProcess));
}

std::vector<std::vector<Segment>> extractSegmentsParallel(
    const trace::TraceView& tr, trace::FunctionId f,
    util::ThreadPool& pool,
    std::size_t grainRanks) {
  PERFVAR_REQUIRE(f < tr.functions().size(),
                  "segmentation function is not defined in this trace");
  std::vector<std::vector<Segment>> result(tr.processCount());
  util::parallelChunks(&pool, tr.processCount(), grainRanks,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t p = begin; p < end; ++p) {
                           result[p] = detail::extractSegmentsProcess(
                               tr, static_cast<trace::ProcessId>(p), f);
                         }
                       });
  return result;
}

SosResult analyzeSosParallel(const trace::TraceView& tr,
                             trace::FunctionId segmentFunction,
                             const SyncClassifier& classifier,
                             util::ThreadPool& pool, std::size_t grainRanks) {
  PERFVAR_REQUIRE(segmentFunction < tr.functions().size(),
                  "segmentation function is not defined in this trace");
  const std::vector<bool> syncMask = classifier.mask(tr);
  std::vector<std::vector<SegmentAnalysis>> perProcess(tr.processCount());
  util::parallelChunks(&pool, tr.processCount(), grainRanks,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t p = begin; p < end; ++p) {
                           perProcess[p] = detail::analyzeSosProcess(
                               tr, static_cast<trace::ProcessId>(p),
                               segmentFunction, syncMask);
                         }
                       });
  return SosResult(tr, segmentFunction, std::move(perProcess));
}

VariationReport analyzeVariationParallel(const SosResult& sos,
                                         const VariationOptions& options,
                                         util::ThreadPool& pool,
                                         std::size_t grain) {
  return detail::analyzeVariationImpl(sos, options, poolRunner(pool, grain));
}

namespace detail {

AnalysisResult analyzeTraceSharded(const trace::TraceView& tr,
                                   const PipelineOptions& options) {
  util::ThreadPool pool(options.threads);
  const std::size_t grain = options.grainSizeRanks;

  AnalysisResult result;
  result.profile = buildProfileParallel(tr, pool, grain);
  result.selection = selectDominantFunction(tr, result.profile,
                                            options.dominant);
  PERFVAR_REQUIRE(result.selection.hasDominant(),
                  "no function qualifies as time-dominant; lower the "
                  "invocation multiplier or check the instrumentation");
  PERFVAR_REQUIRE(options.candidateIndex < result.selection.candidates.size(),
                  "candidateIndex exceeds the number of dominant candidates");
  result.segmentFunction =
      result.selection.candidates[options.candidateIndex].function;
  result.sos = std::make_unique<SosResult>(analyzeSosParallel(
      tr, result.segmentFunction, options.sync, pool, grain));
  result.variation = analyzeVariationParallel(
      *result.sos, options.variation, pool, grain);
  return result;
}

}  // namespace detail


}  // namespace perfvar::analysis
