#include "analysis/parallel.hpp"

#include <utility>
#include <vector>

#include "util/error.hpp"

namespace perfvar::analysis {

namespace {

util::ChunkOptions chunkOpts(std::size_t grain, bool stealing) {
  util::ChunkOptions opts;
  opts.grain = grain;
  opts.stealing = stealing;
  return opts;
}

/// Pool-backed IndexRunner for the variation loops: chunks of `grain`
/// indices per task, bodies write disjoint slots.
detail::IndexRunner poolRunner(util::ThreadPool& pool, std::size_t grain,
                               bool stealing) {
  return [&pool, grain, stealing](
             std::size_t n, const std::function<void(std::size_t)>& body) {
    util::parallelChunks(&pool, n, chunkOpts(grain, stealing),
                         [&body](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             body(i);
                           }
                         });
  };
}

}  // namespace

profile::FlatProfile buildProfileParallel(const trace::TraceView& tr,
                                          util::ThreadPool& pool,
                                          std::size_t grainRanks,
                                          bool stealing,
                                          bool referenceKernels) {
  std::vector<std::vector<profile::FunctionStats>> perProcess(
      tr.processCount());
  util::parallelChunks(&pool, tr.processCount(),
                       chunkOpts(grainRanks, stealing),
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t p = begin; p < end; ++p) {
                           const auto rank =
                               static_cast<trace::ProcessId>(p);
                           perProcess[p] =
                               referenceKernels
                                   ? profile::FlatProfile::
                                         buildProcessReference(tr, rank)
                                   : profile::FlatProfile::buildProcess(
                                         tr, rank);
                         }
                       });
  return profile::FlatProfile::fromPerProcess(tr, std::move(perProcess));
}

std::vector<std::vector<Segment>> extractSegmentsParallel(
    const trace::TraceView& tr, trace::FunctionId f,
    util::ThreadPool& pool,
    std::size_t grainRanks, bool stealing) {
  PERFVAR_REQUIRE(f < tr.functions().size(),
                  "segmentation function is not defined in this trace");
  std::vector<std::vector<Segment>> result(tr.processCount());
  util::parallelChunks(&pool, tr.processCount(),
                       chunkOpts(grainRanks, stealing),
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t p = begin; p < end; ++p) {
                           result[p] = detail::extractSegmentsProcess(
                               tr, static_cast<trace::ProcessId>(p), f);
                         }
                       });
  return result;
}

SosResult analyzeSosParallel(const trace::TraceView& tr,
                             trace::FunctionId segmentFunction,
                             const SyncClassifier& classifier,
                             util::ThreadPool& pool, std::size_t grainRanks,
                             bool stealing, bool referenceKernels) {
  PERFVAR_REQUIRE(segmentFunction < tr.functions().size(),
                  "segmentation function is not defined in this trace");
  const std::vector<bool> syncMask = classifier.mask(tr);
  std::vector<std::vector<SegmentAnalysis>> perProcess(tr.processCount());
  util::parallelChunks(
      &pool, tr.processCount(), chunkOpts(grainRanks, stealing),
      [&](std::size_t begin, std::size_t end) {
        // One scratch per chunk: the metric-state buffers are sized by
        // the (fixed) metric count, so ranks after the first reuse the
        // allocation instead of repeating it.
        detail::SosScratch scratch;
        for (std::size_t p = begin; p < end; ++p) {
          const auto rank = static_cast<trace::ProcessId>(p);
          perProcess[p] =
              referenceKernels
                  ? detail::analyzeSosProcessReference(
                        tr, rank, segmentFunction, syncMask)
                  : detail::analyzeSosProcess(tr, rank, segmentFunction,
                                              syncMask, scratch);
        }
      });
  return SosResult(tr, segmentFunction, std::move(perProcess));
}

VariationReport analyzeVariationParallel(const SosResult& sos,
                                         const VariationOptions& options,
                                         util::ThreadPool& pool,
                                         std::size_t grain, bool stealing,
                                         bool referenceKernels) {
  return detail::analyzeVariationImpl(
      sos, options, poolRunner(pool, grain, stealing), referenceKernels);
}

namespace detail {

AnalysisResult analyzeTraceSharded(const trace::TraceView& tr,
                                   const PipelineOptions& options) {
  util::ThreadPool pool(options.threads);
  const std::size_t grain = options.grainSizeRanks;
  const bool stealing = options.stealing;
  const bool reference = options.referenceKernels;

  AnalysisResult result;
  result.profile = buildProfileParallel(tr, pool, grain, stealing, reference);
  result.selection = selectDominantFunction(tr, result.profile,
                                            options.dominant);
  PERFVAR_REQUIRE(result.selection.hasDominant(),
                  "no function qualifies as time-dominant; lower the "
                  "invocation multiplier or check the instrumentation");
  PERFVAR_REQUIRE(options.candidateIndex < result.selection.candidates.size(),
                  "candidateIndex exceeds the number of dominant candidates");
  result.segmentFunction =
      result.selection.candidates[options.candidateIndex].function;
  result.sos = std::make_unique<SosResult>(
      analyzeSosParallel(tr, result.segmentFunction, options.sync, pool,
                         grain, stealing, reference));
  result.variation = analyzeVariationParallel(
      *result.sos, options.variation, pool, grain, stealing, reference);
  if (options.poolStats != nullptr) {
    *options.poolStats = pool.stats();
  }
  return result;
}

}  // namespace detail


}  // namespace perfvar::analysis
