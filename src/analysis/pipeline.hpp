#ifndef PERFVAR_ANALYSIS_PIPELINE_HPP
#define PERFVAR_ANALYSIS_PIPELINE_HPP

/// \file pipeline.hpp
/// One-call entry point running the paper's three steps:
///   1. identify the time-dominant function (Section IV),
///   2. compute SOS-times of its invocations (Section V),
///   3. derive the variation report that drives the visualization
///      (Section VI).
///
/// This is the API that examples and downstream tools use; the individual
/// stages remain available for custom workflows (e.g. the granularity
/// drill-down of Figure 5 re-runs stages 2-3 with candidateIndex > 0).

#include <memory>
#include <string>

#include "analysis/dominant.hpp"
#include "analysis/sos.hpp"
#include "analysis/variation.hpp"
#include "profile/profile.hpp"
#include "util/thread_pool.hpp"

namespace perfvar::analysis {

/// Options of the full pipeline.
struct PipelineOptions {
  DominantOptions dominant{};
  /// Classifier used for the SOS subtraction (and, when
  /// dominant.excludeSynchronization is set, for candidacy filtering).
  SyncClassifier sync{};
  VariationOptions variation{};
  /// Which candidate of the dominant ranking to segment by: 0 = the
  /// time-dominant function, k > 0 = increasingly finer segmentation.
  std::size_t candidateIndex = 0;
  /// Worker threads of the rank-sharded stages: 1 (the default) runs every
  /// stage inline on the calling thread; 0 = hardware concurrency; any
  /// other value spawns that many pool workers. The result is bit-identical
  /// regardless of this value (see parallel.hpp for the determinism
  /// argument).
  std::size_t threads = 1;
  /// Ranks per pool task when threads != 1. Larger grains amortize task
  /// overhead on traces with many cheap ranks; has no effect on the result.
  std::size_t grainSizeRanks = 1;
  /// Work stealing between worker shards of the rank-sharded stages
  /// (threads != 1). Off = static contiguous partition, the pre-stealing
  /// baseline where a tail of expensive ranks serializes on its shard
  /// owner. Purely a scheduling knob: results are bit-identical either way.
  bool stealing = true;
  /// Run the pre-optimization reference kernels (std::function replay
  /// visitors, per-element leave-one-out rebuilds) instead of the tuned
  /// ones. Results are bit-identical by contract (the differential matrix
  /// in tests/throughput_test.cpp enforces it); this exists as the oracle
  /// side of that matrix and as perfbench's recorded-in-the-same-run
  /// baseline.
  bool referenceKernels = false;
  /// When non-null and threads != 1, receives the per-worker scheduler
  /// counters of the run's pool (chunks run/stolen, idle wakeups) — the
  /// tail-rank idling visibility behind `trace_tool --verbose`.
  util::ThreadPoolStats* poolStats = nullptr;
};

/// Complete result of one pipeline run.
struct AnalysisResult {
  profile::FlatProfile profile;
  DominantSelection selection;
  trace::FunctionId segmentFunction = trace::kInvalidFunction;
  std::unique_ptr<SosResult> sos;  ///< heap: SosResult is not assignable
  VariationReport variation;
  /// Set only when the input trace carried quarantined ranks: the filtered
  /// sub-view (dropQuarantined) the analysis actually ran on. SosResult
  /// shares ownership of its backend, so the result is self-contained.
  trace::TraceView salvagedView;
};

/// Run the full pipeline; throws perfvar::Error if no function qualifies
/// as time-dominant (or candidateIndex is out of range).
///
/// With options.threads == 1 every stage runs inline; any other value
/// routes through the rank-sharded parallel engine (parallel.hpp) with
/// bit-identical output. This is the one analysis entry point.
///
/// Graceful degradation: a trace carrying quarantined ranks (a Salvage-
/// mode load) is analyzed as if those ranks were never present — the
/// pipeline runs on trace::dropQuarantined(trace) (kept alive in
/// AnalysisResult::salvagedView) and produces exactly the result a
/// manually filtered trace would. This throws (like any analysis of an
/// empty trace) when every rank is quarantined.
///
/// Lifetime: for a view borrowed from a Trace (the implicit conversion)
/// the trace must outlive the result; owned and out-of-core views share
/// ownership with the result. The rvalue overload is deleted so passing a
/// temporary trace is a compile error instead of a dangling pointer.
AnalysisResult analyzeTrace(const trace::TraceView& trace,
                            const PipelineOptions& options = {});
AnalysisResult analyzeTrace(trace::Trace&&,
                            const PipelineOptions& = {}) = delete;

/// Render a complete text report (dominant selection + variation report;
/// plus a degraded-input section when `trace` carries quarantined ranks —
/// output for clean traces is byte-for-byte unchanged).
std::string formatAnalysis(const trace::TraceView& trace,
                           const AnalysisResult& result);

/// Same report from individual stage results (the engine renders cached
/// stages without assembling an AnalysisResult; both overloads share one
/// implementation, so their output is identical).
std::string formatAnalysis(const trace::TraceView& trace,
                           const DominantSelection& selection,
                           const SosResult& sos,
                           const VariationReport& variation);

/// The degraded-input section of formatAnalysis: one line per quarantined
/// rank (error class, events salvaged/dropped). Empty string for a clean
/// trace.
std::string formatDegradation(const trace::TraceView& trace);

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_PIPELINE_HPP
