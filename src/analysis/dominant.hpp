#ifndef PERFVAR_ANALYSIS_DOMINANT_HPP
#define PERFVAR_ANALYSIS_DOMINANT_HPP

/// \file dominant.hpp
/// Identification of time-dominant functions (paper Section IV).
///
/// The time-dominant function of a run is the function with the highest
/// aggregated inclusive time among all functions invoked at least
/// `invocationMultiplier * p` times (p = process count; the paper uses
/// multiplier 2). Top-level wrappers like `main` have exactly p
/// invocations and are therefore rejected: they provide no segmentation
/// of the run.
///
/// All qualifying functions are returned ranked by aggregated inclusive
/// time; picking a later candidate yields a *finer* segmentation (used for
/// the drill-down in the paper's Figure 5(c)).

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/sync.hpp"
#include "profile/profile.hpp"
#include "trace/trace.hpp"
#include "trace/view.hpp"

namespace perfvar::analysis {

/// Options of the dominant-function heuristic.
struct DominantOptions {
  /// A candidate needs at least `invocationMultiplier * processCount`
  /// invocations. The paper uses 2.
  std::uint64_t invocationMultiplier = 2;

  /// Exclude synchronization/communication functions from candidacy.
  /// Segmenting by MPI calls would make every segment pure wait time; the
  /// paper implicitly segments by application functions only.
  bool excludeSynchronization = true;

  /// Classifier used when excludeSynchronization is set.
  SyncClassifier syncClassifier{};
};

/// One candidate of the ranking.
struct DominantCandidate {
  trace::FunctionId function = trace::kInvalidFunction;
  std::uint64_t invocations = 0;
  trace::Timestamp aggregatedInclusive = 0;
};

/// Result of the selection.
struct DominantSelection {
  /// Qualifying candidates, ranked by descending aggregated inclusive time.
  /// candidates[0] is the time-dominant function; candidates[k] for k > 0
  /// give increasingly finer segmentations.
  std::vector<DominantCandidate> candidates;

  /// Functions rejected for having fewer than the required invocations but
  /// with an aggregated inclusive time above the winner (diagnostics; e.g.
  /// `main` in the paper's Figure 2).
  std::vector<DominantCandidate> rejectedTopLevel;

  bool hasDominant() const { return !candidates.empty(); }
  const DominantCandidate& dominant() const;
};

/// Run the selection on a prebuilt profile.
DominantSelection selectDominantFunction(const trace::TraceView& trace,
                                         const profile::FlatProfile& profile,
                                         const DominantOptions& options = {});

/// Convenience overload building the profile internally.
DominantSelection selectDominantFunction(const trace::TraceView& trace,
                                         const DominantOptions& options = {});

/// Human-readable summary of a selection (top candidates, rejections).
std::string formatSelection(const trace::TraceView& trace,
                            const DominantSelection& selection,
                            std::size_t maxCandidates = 5);

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_DOMINANT_HPP
