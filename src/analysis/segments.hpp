#ifndef PERFVAR_ANALYSIS_SEGMENTS_HPP
#define PERFVAR_ANALYSIS_SEGMENTS_HPP

/// \file segments.hpp
/// Partitioning of process timelines into segments.
///
/// A segment is one *outermost* invocation of the segmentation function
/// (normally the time-dominant function) on one process; its duration is
/// the invocation's inclusive time (paper Section III, footnote 1).

#include <vector>

#include "trace/trace.hpp"
#include "trace/view.hpp"

namespace perfvar::analysis {

/// One segment of one process timeline.
struct Segment {
  trace::ProcessId process = 0;
  std::uint32_t index = 0;  ///< 0-based order on this process
  trace::Timestamp enter = 0;
  trace::Timestamp leave = 0;

  trace::Timestamp inclusive() const { return leave - enter; }
  bool contains(trace::Timestamp t) const { return t >= enter && t < leave; }
};

/// Extract the segments of every process for segmentation function `f`.
/// Nested (recursive) invocations of `f` are not split into sub-segments;
/// only the outermost invocation forms a segment. Result is indexed by
/// process; processes that never invoke `f` get an empty vector.
std::vector<std::vector<Segment>> extractSegments(const trace::TraceView& trace,
                                                  trace::FunctionId f);

/// Summary of the segmentation shape.
struct SegmentationInfo {
  std::size_t totalSegments = 0;
  std::size_t minPerProcess = 0;
  std::size_t maxPerProcess = 0;
  bool uniform = false;  ///< all processes have the same segment count
};

SegmentationInfo describeSegmentation(
    const std::vector<std::vector<Segment>>& segments);

namespace detail {

/// Segments of a single process (row `p` of extractSegments). Both the
/// serial extractor and the rank-sharded parallel one call this, so their
/// results are identical by construction.
std::vector<Segment> extractSegmentsProcess(const trace::TraceView& trace,
                                            trace::ProcessId p,
                                            trace::FunctionId f);

}  // namespace detail

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_SEGMENTS_HPP
