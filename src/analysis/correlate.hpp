#ifndef PERFVAR_ANALYSIS_CORRELATE_HPP
#define PERFVAR_ANALYSIS_CORRELATE_HPP

/// \file correlate.hpp
/// Correlation of SOS-times with hardware-counter metrics.
///
/// The paper's WRF case study validates the SOS hotspot map against the
/// FR_FPU_EXCEPTIONS_SSE_MICROTRAPS counter ("the results ... perfectly
/// match our runtime variation analysis"). This module quantifies such a
/// match: Pearson/Spearman correlation between per-segment (and per-
/// process) SOS-times and metric deltas.

#include <string>
#include <vector>

#include "analysis/sos.hpp"

namespace perfvar::analysis {

/// Correlation of one metric with the SOS-times of an analysis.
struct MetricCorrelation {
  trace::MetricId metric = trace::kInvalidMetric;
  /// Correlations over all segments (pairs of SOS-time, metric delta).
  double segmentPearson = 0.0;
  double segmentSpearman = 0.0;
  /// Correlations over per-process totals.
  double processPearson = 0.0;
  double processSpearman = 0.0;
  /// Whether the process with the highest metric total is also the
  /// process with the highest total SOS-time.
  bool topProcessMatches = false;
  std::size_t segmentPairs = 0;
};

/// Correlate one metric with the SOS result.
MetricCorrelation correlateMetric(const SosResult& sos, trace::MetricId metric);

/// Correlate every metric defined in the trace, ranked by absolute
/// per-process Pearson correlation (strongest first). Metrics without any
/// samples are skipped.
std::vector<MetricCorrelation> correlateAllMetrics(const SosResult& sos);

/// One-line rendering, e.g. for reports.
std::string formatCorrelation(const trace::TraceView& trace,
                              const MetricCorrelation& c);

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_CORRELATE_HPP
