#include "analysis/sync.hpp"

#include <array>
#include <atomic>

#include "util/error.hpp"

namespace perfvar::analysis {

namespace {

bool startsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Fixed cache tokens of the built-in policies; custom predicates draw
// unique tokens from the counter so they never alias a built-in (or each
// other).
constexpr std::uint64_t kTokenParadigm = 1;
constexpr std::uint64_t kTokenBlockingOnly = 2;
constexpr std::uint64_t kTokenNone = 3;

std::uint64_t nextCustomToken() {
  static std::atomic<std::uint64_t> counter{16};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

SyncClassifier::SyncClassifier() : SyncClassifier(SyncPolicy::Paradigm) {}

SyncClassifier::SyncClassifier(SyncPolicy policy) : policy_(policy) {
  PERFVAR_REQUIRE(policy != SyncPolicy::Custom,
                  "custom policy requires a predicate");
  token_ = policy == SyncPolicy::Paradigm ? kTokenParadigm
                                          : kTokenBlockingOnly;
}

SyncClassifier::SyncClassifier(
    std::function<bool(const trace::FunctionDef&)> predicate)
    : policy_(SyncPolicy::Custom),
      token_(nextCustomToken()),
      predicate_(std::move(predicate)) {
  PERFVAR_REQUIRE(static_cast<bool>(predicate_),
                  "custom policy requires a predicate");
}

SyncClassifier SyncClassifier::none() {
  SyncClassifier c([](const trace::FunctionDef&) { return false; });
  c.token_ = kTokenNone;  // stable: every none() classifies identically
  return c;
}

bool SyncClassifier::isBlockingMpiName(const std::string& name) {
  // Wait/test-for-completion operations.
  if (startsWith(name, "MPI_Wait") || startsWith(name, "MPI_Probe")) {
    return true;
  }
  // Collectives and barriers.
  static const std::array<const char*, 14> kCollectives = {
      "MPI_Barrier",    "MPI_Bcast",     "MPI_Reduce",    "MPI_Allreduce",
      "MPI_Gather",     "MPI_Allgather", "MPI_Scatter",   "MPI_Alltoall",
      "MPI_Scan",       "MPI_Exscan",    "MPI_Reduce_scatter",
      "MPI_Gatherv",    "MPI_Scatterv",  "MPI_Allgatherv"};
  for (const char* c : kCollectives) {
    if (startsWith(name, c)) {
      return true;
    }
  }
  // Blocking point-to-point (but not the nonblocking I-variants).
  if (name == "MPI_Send" || name == "MPI_Recv" || name == "MPI_Ssend" ||
      name == "MPI_Sendrecv" || name == "MPI_Sendrecv_replace") {
    return true;
  }
  return false;
}

bool SyncClassifier::isOpenMpSyncName(const std::string& name) {
  return name.find("barrier") != std::string::npos ||
         name.find("critical") != std::string::npos ||
         name.find("taskwait") != std::string::npos ||
         name.find("ordered") != std::string::npos ||
         name.find("flush") != std::string::npos;
}

bool SyncClassifier::isSync(const trace::FunctionDef& def) const {
  switch (policy_) {
    case SyncPolicy::Paradigm:
      if (def.paradigm == trace::Paradigm::MPI) {
        return true;
      }
      if (def.paradigm == trace::Paradigm::OpenMP) {
        return isOpenMpSyncName(def.name);
      }
      return false;
    case SyncPolicy::BlockingOnly:
      if (def.paradigm == trace::Paradigm::MPI) {
        return isBlockingMpiName(def.name);
      }
      if (def.paradigm == trace::Paradigm::OpenMP) {
        return isOpenMpSyncName(def.name);
      }
      return false;
    case SyncPolicy::Custom:
      return predicate_(def);
  }
  return false;
}

std::vector<bool> SyncClassifier::mask(const trace::TraceView& trace) const {
  const trace::FunctionRegistry& functions = trace.functions();
  std::vector<bool> m(functions.size());
  for (std::size_t f = 0; f < functions.size(); ++f) {
    m[f] = isSync(functions.at(static_cast<trace::FunctionId>(f)));
  }
  return m;
}

}  // namespace perfvar::analysis
