#ifndef PERFVAR_ANALYSIS_PARALLEL_HPP
#define PERFVAR_ANALYSIS_PARALLEL_HPP

/// \file parallel.hpp
/// Rank-sharded parallel analysis engine.
///
/// The paper's workflow is embarrassingly parallel across process
/// timelines: profile replay, segment extraction, SOS computation and the
/// per-segment variation statistics are per-rank computations followed by
/// a cross-rank reduction. analyzeTrace() with PipelineOptions::threads
/// != 1 shards those per-rank loops over a fixed-size util::ThreadPool and
/// merges the partial results deterministically in rank order. The
/// per-stage helpers below are reused by engine::AnalysisEngine to run
/// cached stages on its own pool.
///
/// Determinism guarantee: every parallel stage calls the exact per-rank
/// helper the serial stage is built from (profile::FlatProfile::buildProcess,
/// detail::extractSegmentsProcess, detail::analyzeSosProcess,
/// detail::analyzeVariationImpl), each task writes only its own disjoint
/// output slots, and all cross-rank reductions run on the calling thread
/// in ascending rank order — so the result is bit-identical to the serial
/// analyzeTrace() regardless of the thread count or grain size
/// (tests/parallel_differential_test.cpp proves it over a trace matrix).

#include "analysis/pipeline.hpp"
#include "analysis/segments.hpp"
#include "util/thread_pool.hpp"

namespace perfvar::analysis {

/// Rank-sharded profile::FlatProfile::build(). `stealing` toggles work
/// stealing between worker shards (a pure scheduling knob, see
/// ThreadPool::runChunks); `referenceKernels` replays with the
/// pre-optimization std::function visitor instead of the inlined one —
/// both leave the result bit-identical.
profile::FlatProfile buildProfileParallel(const trace::TraceView& trace,
                                          util::ThreadPool& pool,
                                          std::size_t grainRanks = 1,
                                          bool stealing = true,
                                          bool referenceKernels = false);

/// Rank-sharded extractSegments().
std::vector<std::vector<Segment>> extractSegmentsParallel(
    const trace::TraceView& trace, trace::FunctionId f,
    util::ThreadPool& pool,
    std::size_t grainRanks = 1,
    bool stealing = true);

/// Rank-sharded analyzeSos(). The classifier mask is computed once on the
/// calling thread and shared read-only by all tasks; each chunk reuses one
/// SosScratch across its ranks (single allocation per chunk, not per rank).
SosResult analyzeSosParallel(const trace::TraceView& trace,
                             trace::FunctionId segmentFunction,
                             const SyncClassifier& classifier,
                             util::ThreadPool& pool,
                             std::size_t grainRanks = 1,
                             bool stealing = true,
                             bool referenceKernels = false);
SosResult analyzeSosParallel(trace::Trace&&, trace::FunctionId,
                             const SyncClassifier&, util::ThreadPool&,
                             std::size_t = 1, bool = true,
                             bool = false) = delete;

/// analyzeVariation() with the per-iteration and per-process loops sharded
/// over the pool (the cross-rank reductions stay on the calling thread).
VariationReport analyzeVariationParallel(const SosResult& sos,
                                         const VariationOptions& options,
                                         util::ThreadPool& pool,
                                         std::size_t grain = 1,
                                         bool stealing = true,
                                         bool referenceKernels = false);

namespace detail {

/// The rank-sharded pipeline run: analyzeTrace() dispatches here when
/// options.threads != 1. Spawns a pool of options.threads workers (0 =
/// hardware concurrency) for the duration of the call.
AnalysisResult analyzeTraceSharded(const trace::TraceView& trace,
                                   const PipelineOptions& options);

}  // namespace detail

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_PARALLEL_HPP
