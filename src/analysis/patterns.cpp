#include "analysis/patterns.hpp"

#include <algorithm>
#include <array>

#include "trace/replay.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

#include <sstream>

namespace perfvar::analysis {

namespace {

constexpr std::size_t kPatternCount = 2;

bool isCollectiveName(const std::string& name) {
  static const std::array<const char*, 15> kCollectives = {
      "MPI_Barrier",   "MPI_Bcast",         "MPI_Reduce",
      "MPI_Allreduce", "MPI_Gather",        "MPI_Allgather",
      "MPI_Scatter",   "MPI_Alltoall",      "MPI_Scan",
      "MPI_Exscan",    "MPI_Reduce_scatter", "MPI_Gatherv",
      "MPI_Scatterv",  "MPI_Allgatherv",    "MPI_Alltoallv"};
  for (const char* c : kCollectives) {
    if (name.rfind(c, 0) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

const char* patternName(PatternKind kind) {
  switch (kind) {
    case PatternKind::WaitAtCollective:
      return "Wait at Collective";
    case PatternKind::LateSender:
      return "Late Sender";
  }
  return "Unknown";
}

double PatternReport::patternTotal(PatternKind kind) const {
  const auto idx = static_cast<std::size_t>(kind);
  PERFVAR_REQUIRE(idx < severityByProcess.size(), "invalid pattern kind");
  double total = 0.0;
  for (const double v : severityByProcess[idx]) {
    total += v;
  }
  return total;
}

trace::ProcessId PatternReport::worstVictim() const {
  PERFVAR_REQUIRE(!severityByProcess.empty() &&
                      !severityByProcess.front().empty(),
                  "empty pattern report");
  const std::size_t procs = severityByProcess.front().size();
  trace::ProcessId worst = 0;
  double worstSeverity = -1.0;
  for (std::size_t p = 0; p < procs; ++p) {
    double sum = 0.0;
    for (const auto& per : severityByProcess) {
      sum += per[p];
    }
    if (sum > worstSeverity) {
      worstSeverity = sum;
      worst = static_cast<trace::ProcessId>(p);
    }
  }
  return worst;
}

PatternReport findWaitStates(const trace::TraceView& tr,
                             const PatternOptions& options) {
  PatternReport report;
  report.severityByProcess.assign(
      kPatternCount, std::vector<double>(tr.processCount(), 0.0));
  const double res = static_cast<double>(tr.resolution());

  const auto record = [&](PatternKind kind, trace::ProcessId p,
                          trace::Timestamp start, double severity,
                          trace::FunctionId fn) {
    if (severity <= 0.0) {
      return;
    }
    report.severityByProcess[static_cast<std::size_t>(kind)][p] += severity;
    report.totalSeverity += severity;
    if (severity >= options.minListedSeverity) {
      report.instances.push_back(PatternInstance{kind, p, start, severity,
                                                 fn});
    }
  };

  // ---- Wait at Collective ----------------------------------------------
  // Collect the collective frames per (function, process) in occurrence
  // order, then analyze round k across processes: the waiting time of a
  // rank is the gap between its own arrival and the last arrival.
  std::vector<bool> isCollective(tr.functions().size(), false);
  for (std::size_t f = 0; f < tr.functions().size(); ++f) {
    const auto& def = tr.functions().at(static_cast<trace::FunctionId>(f));
    isCollective[f] = def.paradigm == trace::Paradigm::MPI &&
                      isCollectiveName(def.name);
  }

  struct CollFrame {
    trace::Timestamp enter;
    trace::Timestamp leave;
  };
  // frames[function][process] -> occurrence-ordered frames.
  std::vector<std::vector<std::vector<CollFrame>>> frames(
      tr.functions().size(),
      std::vector<std::vector<CollFrame>>(tr.processCount()));

  // ---- Late Sender (also gathered in the same replay pass) --------------
  struct RecvWait {
    trace::ProcessId process;
    trace::Timestamp frameEnter;
    trace::Timestamp completed;
    trace::FunctionId function;
  };
  std::vector<RecvWait> recvWaits;

  for (trace::ProcessId p = 0; p < tr.processCount(); ++p) {
    struct Open {
      trace::FunctionId fn;
      trace::Timestamp enter;
    };
    std::vector<Open> stack;
    trace::ReplayVisitor v;
    v.onEnter = [&](trace::FunctionId fn, trace::Timestamp t, std::size_t) {
      stack.push_back(Open{fn, t});
    };
    v.onLeave = [&](const trace::Frame& frame) {
      stack.pop_back();
      if (isCollective[frame.function]) {
        frames[frame.function][p].push_back(
            CollFrame{frame.enterTime, frame.leaveTime});
      }
    };
    v.onMessage = [&](bool isSend, const trace::Event& e) {
      if (isSend || stack.empty()) {
        return;
      }
      // The enclosing frame is the receive operation; the blocking time
      // is the span from posting the receive to message completion.
      const Open& open = stack.back();
      if (tr.functions().at(open.fn).paradigm == trace::Paradigm::MPI &&
          e.time > open.enter) {
        recvWaits.push_back(RecvWait{p, open.enter, e.time, open.fn});
      }
    };
    const trace::RankPin pin = tr.rank(p);
    trace::replayEvents(pin.events(), v);
  }

  for (std::size_t f = 0; f < tr.functions().size(); ++f) {
    if (!isCollective[f]) {
      continue;
    }
    // Participating processes: those with at least one occurrence.
    std::size_t rounds = 0;
    bool first = true;
    for (const auto& per : frames[f]) {
      if (!per.empty()) {
        rounds = first ? per.size() : std::min(rounds, per.size());
        first = false;
      }
    }
    for (std::size_t round = 0; round < rounds; ++round) {
      trace::Timestamp lastArrival = 0;
      for (trace::ProcessId p = 0; p < tr.processCount(); ++p) {
        if (!frames[f][p].empty()) {
          lastArrival = std::max(lastArrival, frames[f][p][round].enter);
        }
      }
      for (trace::ProcessId p = 0; p < tr.processCount(); ++p) {
        if (frames[f][p].empty()) {
          continue;
        }
        const CollFrame& frame = frames[f][p][round];
        const double wait =
            frame.enter < lastArrival
                ? static_cast<double>(lastArrival - frame.enter) / res
                : 0.0;
        record(PatternKind::WaitAtCollective, p, frame.enter, wait,
               static_cast<trace::FunctionId>(f));
      }
    }
  }

  for (const RecvWait& rw : recvWaits) {
    record(PatternKind::LateSender, rw.process, rw.frameEnter,
           static_cast<double>(rw.completed - rw.frameEnter) / res,
           rw.function);
  }

  std::sort(report.instances.begin(), report.instances.end(),
            [](const PatternInstance& a, const PatternInstance& b) {
              if (a.severitySeconds != b.severitySeconds) {
                return a.severitySeconds > b.severitySeconds;
              }
              if (a.process != b.process) {
                return a.process < b.process;
              }
              return a.start < b.start;
            });
  if (report.instances.size() > options.maxInstances) {
    report.instances.resize(options.maxInstances);
  }
  return report;
}

std::string formatPatternReport(const trace::TraceView& tr,
                                const PatternReport& report,
                                std::size_t maxRows) {
  std::ostringstream os;
  os << "total severity: " << fmt::seconds(report.totalSeverity) << '\n';
  for (std::size_t k = 0; k < report.severityByProcess.size(); ++k) {
    const auto kind = static_cast<PatternKind>(k);
    os << patternName(kind) << ": " << fmt::seconds(report.patternTotal(kind))
       << '\n';
  }
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"pattern", "process", "severity", "at"});
  for (std::size_t i = 0; i < std::min(maxRows, report.instances.size());
       ++i) {
    const auto& inst = report.instances[i];
    rows.push_back({patternName(inst.kind),
                    tr.processName(inst.process),
                    fmt::seconds(inst.severitySeconds),
                    fmt::seconds(tr.toSeconds(inst.start))});
  }
  os << fmt::table(rows);
  return os.str();
}

}  // namespace perfvar::analysis
