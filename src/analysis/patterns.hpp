#ifndef PERFVAR_ANALYSIS_PATTERNS_HPP
#define PERFVAR_ANALYSIS_PATTERNS_HPP

/// \file patterns.hpp
/// Scalasca-style automatic wait-state pattern search.
///
/// The paper contrasts its visualization with automatic pattern searches:
/// "Scalasca automatically searches trace data for a range of inefficiency
/// patterns. Located patterns are ranked by their severity ... but it is
/// also restricted to a limited set of performance problems" and "does not
/// visualize runtime imbalances over time". This module implements the
/// classic subset of those patterns so benches can compare the two
/// philosophies head to head:
///
///  * WaitAtCollective - time ranks spend inside barriers/collectives
///    before the operation completes (classic "Wait at Barrier/N x N");
///  * LateSender - time a receive blocks before the matching message was
///    sent plus its transfer completed;
///  * severity is accumulated per (pattern, process) like Scalasca's
///    severity view.
///
/// Note the structural property the benches exploit: wait-state severities
/// accumulate on the *victims* (the waiting ranks), so for a load
/// imbalance the overloaded rank is the one with the LOWEST severity -
/// the search finds a symptom, the SOS overlay points at the cause.

#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "trace/view.hpp"

namespace perfvar::analysis {

/// Kinds of detected inefficiency patterns.
enum class PatternKind : std::uint8_t {
  WaitAtCollective,
  LateSender,
};

const char* patternName(PatternKind kind);

/// One located pattern instance.
struct PatternInstance {
  PatternKind kind = PatternKind::WaitAtCollective;
  trace::ProcessId process = 0;   ///< the waiting (victim) process
  trace::Timestamp start = 0;     ///< begin of the waiting interval
  double severitySeconds = 0.0;   ///< wasted time
  trace::FunctionId function = trace::kInvalidFunction;  ///< the MPI call
};

/// Aggregated result of the pattern search.
struct PatternReport {
  std::vector<PatternInstance> instances;  ///< ranked by severity, desc
  /// severity[pattern][process] in seconds.
  std::vector<std::vector<double>> severityByProcess;
  double totalSeverity = 0.0;

  /// Total severity of one pattern kind.
  double patternTotal(PatternKind kind) const;

  /// Process with the highest summed severity (the worst *victim*).
  trace::ProcessId worstVictim() const;
};

/// Options of the search.
struct PatternOptions {
  /// Instances below this severity are aggregated but not listed.
  double minListedSeverity = 1e-6;
  std::size_t maxInstances = 1000;
};

/// Run the wait-state search over a trace. Collective completion times
/// are estimated per matched collective round (frames of the same MPI
/// collective function, matched by per-process occurrence order, complete
/// together - exactly how the simulator and real barrier semantics work).
/// Late-sender analysis matches message events FIFO per (src, dst, tag).
PatternReport findWaitStates(const trace::TraceView& trace,
                             const PatternOptions& options = {});

/// Render the severity summary (per pattern, top processes).
std::string formatPatternReport(const trace::TraceView& trace,
                                const PatternReport& report,
                                std::size_t maxRows = 10);

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_PATTERNS_HPP
