#include "analysis/compare.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"

namespace perfvar::analysis {

namespace {

/// Mean per-iteration imbalance lambda of the SOS values of a run.
double meanIterationImbalance(const SosResult& sos, std::size_t iterations) {
  double acc = 0.0;
  std::size_t counted = 0;
  std::vector<double> values;
  const double res = static_cast<double>(sos.trace().resolution());
  for (std::size_t i = 0; i < iterations; ++i) {
    values.clear();
    for (const auto& per : sos.all()) {
      if (i < per.size()) {
        values.push_back(static_cast<double>(per[i].sosTime) / res);
      }
    }
    if (values.size() >= 2) {
      acc += stats::imbalanceFactor(values);
      ++counted;
    }
  }
  return counted > 0 ? acc / static_cast<double>(counted) : 0.0;
}

double overallSyncShare(const SosResult& sos) {
  double sync = 0.0;
  double total = 0.0;
  for (const auto& per : sos.all()) {
    for (const auto& a : per) {
      sync += static_cast<double>(a.syncTime);
      total += static_cast<double>(a.segment.inclusive());
    }
  }
  return total > 0.0 ? sync / total : 0.0;
}

}  // namespace

RunComparison compareRuns(const SosResult& baseline,
                          const SosResult& candidate) {
  PERFVAR_REQUIRE(baseline.maxSegmentsPerProcess() > 0 &&
                      candidate.maxSegmentsPerProcess() > 0,
                  "compareRuns: a run has no segments");
  RunComparison cmp;
  cmp.meanDurationA = baseline.meanDurationPerIteration();
  cmp.meanDurationB = candidate.meanDurationPerIteration();
  cmp.iterationsCompared =
      std::min(cmp.meanDurationA.size(), cmp.meanDurationB.size());

  cmp.speedupPerIteration.reserve(cmp.iterationsCompared);
  for (std::size_t i = 0; i < cmp.iterationsCompared; ++i) {
    cmp.totalDurationA += cmp.meanDurationA[i];
    cmp.totalDurationB += cmp.meanDurationB[i];
    cmp.speedupPerIteration.push_back(
        cmp.meanDurationB[i] > 0.0 ? cmp.meanDurationA[i] / cmp.meanDurationB[i]
                                   : 0.0);
  }
  cmp.overallSpeedup = cmp.totalDurationB > 0.0
                           ? cmp.totalDurationA / cmp.totalDurationB
                           : 0.0;
  cmp.meanImbalanceA =
      meanIterationImbalance(baseline, cmp.iterationsCompared);
  cmp.meanImbalanceB =
      meanIterationImbalance(candidate, cmp.iterationsCompared);
  cmp.syncShareA = overallSyncShare(baseline);
  cmp.syncShareB = overallSyncShare(candidate);
  return cmp;
}

std::string formatComparison(const RunComparison& cmp, const std::string& nameA,
                             const std::string& nameB) {
  std::ostringstream os;
  os << "compared " << cmp.iterationsCompared << " iterations\n";
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"", nameA, nameB});
  rows.push_back({"summed iteration time", fmt::seconds(cmp.totalDurationA),
                  fmt::seconds(cmp.totalDurationB)});
  rows.push_back({"mean SOS imbalance lambda",
                  fmt::fixed(cmp.meanImbalanceA, 3),
                  fmt::fixed(cmp.meanImbalanceB, 3)});
  rows.push_back({"synchronization share", fmt::percent(cmp.syncShareA),
                  fmt::percent(cmp.syncShareB)});
  os << fmt::table(rows);
  os << "overall speedup (" << nameA << " / " << nameB << "): "
     << fmt::fixed(cmp.overallSpeedup, 2) << "x\n";
  return os.str();
}

}  // namespace perfvar::analysis
