#ifndef PERFVAR_ANALYSIS_EXPORT_HPP
#define PERFVAR_ANALYSIS_EXPORT_HPP

/// \file export.hpp
/// Result export for downstream tooling: CSV matrices/tables and a JSON
/// document of the complete analysis. Vampir keeps results in its GUI;
/// an open reimplementation needs machine-readable outputs so external
/// notebooks and dashboards can consume the SOS analysis.

#include <iosfwd>
#include <string>

#include "analysis/dominant.hpp"
#include "analysis/sos.hpp"
#include "analysis/variation.hpp"

namespace perfvar::analysis {

/// CSV of the SOS matrix: one row per process ("process,iter0,iter1,...");
/// missing segments are empty cells.
void writeSosMatrixCsv(const SosResult& sos, std::ostream& out);

/// CSV of per-iteration statistics (iteration, processes, min/mean/max
/// SOS, stddev, mean duration, imbalance, slowest process).
void writeIterationStatsCsv(const VariationReport& report, std::ostream& out);

/// CSV of the hotspot list.
void writeHotspotsCsv(const trace::Trace& trace, const VariationReport& report,
                      std::ostream& out);

/// Complete analysis as a single JSON document:
///   { "trace": {...}, "dominant": {...}, "processes": [...],
///     "iterations": [...], "hotspots": [...], "trend": {...} }
/// All strings are JSON-escaped; numbers use full double precision.
void writeAnalysisJson(const trace::Trace& trace,
                       const DominantSelection& selection,
                       const SosResult& sos, const VariationReport& report,
                       std::ostream& out);

/// Convenience string wrappers.
std::string sosMatrixCsv(const SosResult& sos);
std::string analysisJson(const trace::Trace& trace,
                         const DominantSelection& selection,
                         const SosResult& sos,
                         const VariationReport& report);

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_EXPORT_HPP
