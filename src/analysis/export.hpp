#ifndef PERFVAR_ANALYSIS_EXPORT_HPP
#define PERFVAR_ANALYSIS_EXPORT_HPP

/// \file export.hpp
/// Result export for downstream tooling. Vampir keeps results in its GUI;
/// an open reimplementation needs machine-readable outputs so external
/// notebooks and dashboards can consume the SOS analysis.
///
/// exportReport() is the one entry point: it renders a complete analysis
/// in any supported format. The former per-format functions
/// (writeSosMatrixCsv, writeAnalysisJson, ...) remain as deprecated
/// forwarders with unchanged output.

#include <iosfwd>
#include <string>

#include "analysis/dominant.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/sos.hpp"
#include "analysis/variation.hpp"

namespace perfvar::analysis {

/// Output format of exportReport().
enum class ExportFormat {
  Text,          ///< the human-readable formatAnalysis() report
  Json,          ///< complete analysis as one JSON document
  Csv,           ///< SOS matrix: one row per process, one column per iter
  CsvIterations, ///< per-iteration statistics table
  CsvHotspots,   ///< ranked hotspot list
};

/// Render a complete analysis in `format`. All formats are deterministic
/// byte-for-byte functions of the analysis results (full double
/// precision), so serial, parallel and cached pipelines export
/// identically.
void exportReport(const trace::Trace& trace, const AnalysisResult& result,
                  ExportFormat format, std::ostream& out);

/// Same from individual stage results (used by engine::AnalysisEngine to
/// export cached stages without assembling an AnalysisResult).
void exportReport(const trace::Trace& trace,
                  const DominantSelection& selection, const SosResult& sos,
                  const VariationReport& report, ExportFormat format,
                  std::ostream& out);

/// Convenience string wrapper.
std::string exportReportString(const trace::Trace& trace,
                               const AnalysisResult& result,
                               ExportFormat format);

namespace detail {

/// Format implementations shared by exportReport() and the deprecated
/// forwarders below (Text lives in pipeline.cpp as formatAnalysis()).
void writeSosMatrixCsv(const SosResult& sos, std::ostream& out);
void writeIterationStatsCsv(const VariationReport& report, std::ostream& out);
void writeHotspotsCsv(const trace::Trace& trace, const VariationReport& report,
                      std::ostream& out);
void writeAnalysisJson(const trace::Trace& trace,
                       const DominantSelection& selection,
                       const SosResult& sos, const VariationReport& report,
                       std::ostream& out);

}  // namespace detail

/// Deprecated per-format entry points; each forwards to the shared
/// implementation behind exportReport() and produces unchanged output.
[[deprecated("use exportReport(..., ExportFormat::Csv, ...)")]] void
writeSosMatrixCsv(const SosResult& sos, std::ostream& out);

[[deprecated("use exportReport(..., ExportFormat::CsvIterations, ...)")]] void
writeIterationStatsCsv(const VariationReport& report, std::ostream& out);

[[deprecated("use exportReport(..., ExportFormat::CsvHotspots, ...)")]] void
writeHotspotsCsv(const trace::Trace& trace, const VariationReport& report,
                 std::ostream& out);

[[deprecated("use exportReport(..., ExportFormat::Json, ...)")]] void
writeAnalysisJson(const trace::Trace& trace,
                  const DominantSelection& selection, const SosResult& sos,
                  const VariationReport& report, std::ostream& out);

[[deprecated("use exportReportString(..., ExportFormat::Csv)")]] std::string
sosMatrixCsv(const SosResult& sos);

[[deprecated("use exportReportString(..., ExportFormat::Json)")]] std::string
analysisJson(const trace::Trace& trace, const DominantSelection& selection,
             const SosResult& sos, const VariationReport& report);

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_EXPORT_HPP
