#ifndef PERFVAR_ANALYSIS_EXPORT_HPP
#define PERFVAR_ANALYSIS_EXPORT_HPP

/// \file export.hpp
/// Result export for downstream tooling. Vampir keeps results in its GUI;
/// an open reimplementation needs machine-readable outputs so external
/// notebooks and dashboards can consume the SOS analysis.
///
/// exportReport() is the one entry point: it renders a complete analysis
/// in any supported format. (The former per-format functions completed
/// their deprecation cycle and are gone; the detail:: implementations
/// below produce the identical bytes.)

#include <iosfwd>
#include <string>

#include "analysis/dominant.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/sos.hpp"
#include "analysis/variation.hpp"

namespace perfvar::analysis {

/// Output format of exportReport().
enum class ExportFormat {
  Text,          ///< the human-readable formatAnalysis() report
  Json,          ///< complete analysis as one JSON document
  Csv,           ///< SOS matrix: one row per process, one column per iter
  CsvIterations, ///< per-iteration statistics table
  CsvHotspots,   ///< ranked hotspot list
};

/// Render a complete analysis in `format`. All formats are deterministic
/// byte-for-byte functions of the analysis results (full double
/// precision), so serial, parallel and cached pipelines export
/// identically.
void exportReport(const trace::TraceView& trace,
                  const AnalysisResult& result,
                  ExportFormat format, std::ostream& out);

/// Same from individual stage results (used by engine::AnalysisEngine to
/// export cached stages without assembling an AnalysisResult).
void exportReport(const trace::TraceView& trace,
                  const DominantSelection& selection, const SosResult& sos,
                  const VariationReport& report, ExportFormat format,
                  std::ostream& out);

/// Convenience string wrapper.
std::string exportReportString(const trace::TraceView& trace,
                               const AnalysisResult& result,
                               ExportFormat format);

namespace detail {

/// Format implementations behind exportReport() (Text lives in
/// pipeline.cpp as formatAnalysis()).
void writeSosMatrixCsv(const SosResult& sos, std::ostream& out);
void writeIterationStatsCsv(const VariationReport& report, std::ostream& out);
void writeHotspotsCsv(const trace::TraceView& trace,
                      const VariationReport& report, std::ostream& out);
void writeAnalysisJson(const trace::TraceView& trace,
                       const DominantSelection& selection,
                       const SosResult& sos, const VariationReport& report,
                       std::ostream& out);

}  // namespace detail

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_EXPORT_HPP
