#ifndef PERFVAR_ANALYSIS_DEPGRAPH_HPP
#define PERFVAR_ANALYSIS_DEPGRAPH_HPP

/// \file depgraph.hpp
/// Cross-rank dependency analysis: a happens-before graph over the
/// communication events of a trace, with three derived detectors.
///
/// The variation pipeline (paper Sections IV-V) finds *which ranks*
/// behave anomalously but not *why a bottleneck propagates*. This layer
/// answers the propagation question in the spirit of GAPP-style
/// critical-path profiling and idle-wave analysis:
///
///  1. buildDepGraph() turns the per-rank event streams into a
///     happens-before DAG. Nodes are the communication events (MpiSend /
///     MpiRecv) plus one start and one end sentinel per rank; edges are
///     the program order within a rank and the matched send->recv pairs
///     across ranks (FIFO per (sender, receiver, tag) channel, the MPI
///     ordering guarantee).
///  2. extractCriticalPath() walks the graph backward from the globally
///     latest rank end, always following the dependency that completed
///     last, and attributes every local step to the functions that were
///     executing (per rank and per function).
///  3. detectSerialization() flags ranks — and (rank, function) regions —
///     whose share of the critical path exceeds a threshold: the
///     signature of a serializing stage.
///  4. detectIdleWaves() recognizes wavefronts of late arrivals: chains
///     of blocked receives on distinct ranks where each late message was
///     sent by a rank that was itself delayed earlier. The head of a
///     chain names the origin rank of the wave.
///
/// Determinism discipline (same contract as analysis/parallel.hpp): node
/// extraction is sharded per rank — each rank's nodes are a pure function
/// of its own event stream — and every cross-rank phase (matching, path
/// walk, detectors) is serial with total tie-break orders, so all results
/// and exports are byte-identical at every thread count.
///
/// Robustness contract (shared with lint): buildDepGraph() and the
/// detectors never throw on hostile trace content. Unmatched or invalid
/// message endpoints are counted, never fatal; non-monotone clocks clamp
/// to zero-length intervals; the backward walk carries a visited guard so
/// cyclic timestamps on garbage input terminate.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "analysis/export.hpp"
#include "analysis/sync.hpp"
#include "trace/trace.hpp"
#include "trace/view.hpp"

namespace perfvar::util {
class ThreadPool;
}

namespace perfvar::analysis {

/// Kind of one dependency-graph node.
enum class DepNodeKind : std::uint8_t {
  RankStart,  ///< sentinel before a rank's first event
  Send,       ///< an MpiSend event
  Recv,       ///< an MpiRecv event
  RankEnd,    ///< sentinel after a rank's last event
};

/// Human-readable node kind ("start", "send", "recv", "end").
const char* depNodeKindName(DepNodeKind k);

/// Exclusive time spent in one function between two consecutive nodes of
/// a rank (the unit of critical-path attribution). `function` may be
/// trace::kInvalidFunction for time outside any (known) function.
struct FunctionTicks {
  trace::FunctionId function = trace::kInvalidFunction;
  std::uint64_t ticks = 0;
};

/// One node of the happens-before graph.
struct DepNode {
  trace::Timestamp time = 0;
  /// Recv only: when the rank began waiting — the Enter timestamp of the
  /// innermost enclosing synchronization region, or `time` when the
  /// receive sits outside any sync region. A matched send departing after
  /// `waitStart` means the receiver idled for the difference.
  trace::Timestamp waitStart = 0;
  std::int64_t match = -1;  ///< matched counterpart node index, -1 = none
  std::int64_t prev = -1;   ///< previous node on the same rank, -1 = none
  std::int64_t eventIndex = -1;  ///< index in the rank's stream, -1 = sentinel
  /// Slice [attrBegin, attrBegin+attrCount) of DepGraph::attribution:
  /// per-function exclusive time since the previous node of this rank.
  std::uint32_t attrBegin = 0;
  std::uint32_t attrCount = 0;
  trace::ProcessId process = 0;
  std::uint32_t peer = 0;  ///< send: receiver rank; recv: sender rank
  std::uint32_t tag = 0;
  DepNodeKind kind = DepNodeKind::RankStart;
  /// Innermost function open at the event (kInvalidFunction for sentinels
  /// and events outside any function).
  trace::FunctionId function = trace::kInvalidFunction;
};

/// Counters of graph construction (exported for observability and pinned
/// by the robustness tests).
struct DepGraphStats {
  std::uint64_t sendEvents = 0;
  std::uint64_t recvEvents = 0;
  std::uint64_t matchedPairs = 0;
  std::uint64_t unmatchedSends = 0;
  std::uint64_t unmatchedRecvs = 0;
  /// Messages whose endpoint is the sending rank itself or out of range;
  /// they become edgeless nodes instead of matching candidates.
  std::uint64_t invalidEndpoints = 0;

  bool operator==(const DepGraphStats& other) const = default;
};

/// Options of buildDepGraph(). Execution fields (threads/grain/pool) do
/// not change the result.
struct DepGraphOptions {
  /// Classifier deciding which regions count as synchronization (the
  /// waitStart attribution of receives).
  SyncClassifier sync{};
  /// Worker threads of the per-rank extraction: 1 = inline, 0 = hardware.
  std::size_t threads = 1;
  /// Ranks per pool task when threads != 1.
  std::size_t grainSizeRanks = 1;
  /// Optional external pool; overrides `threads` when set.
  util::ThreadPool* pool = nullptr;
};

/// The happens-before graph of one trace. Nodes are grouped by rank
/// (rank 0's nodes first), stream order within a rank.
struct DepGraph {
  std::vector<DepNode> nodes;
  /// Per-rank [begin, end) node ranges into `nodes`.
  std::vector<std::pair<std::size_t, std::size_t>> rankNodes;
  /// Attribution pool referenced by DepNode::attrBegin/attrCount.
  std::vector<FunctionTicks> attribution;
  DepGraphStats stats;
  std::size_t processCount = 0;
  std::size_t functionCount = 0;
  trace::Timestamp startTime = 0;
  trace::Timestamp endTime = 0;
};

/// Build the happens-before graph. Never throws on trace content; the
/// per-rank extraction is sharded (byte-identical at every thread count).
DepGraph buildDepGraph(const trace::TraceView& trace,
                       const DepGraphOptions& options = {});

/// One step of the critical path, in forward time order.
struct CriticalPathStep {
  std::int64_t node = -1;  ///< destination node (index into DepGraph::nodes)
  trace::ProcessId process = 0;      ///< rank the step ends on
  trace::ProcessId fromProcess = 0;  ///< rank the step starts on
  trace::Timestamp fromTime = 0;
  trace::Timestamp toTime = 0;
  bool remote = false;  ///< message edge (transfer + receiver wait)

  std::uint64_t ticks() const {
    return toTime > fromTime ? toTime - fromTime : 0;
  }
};

/// Critical path with per-rank and per-function time attribution.
struct CriticalPathResult {
  std::vector<CriticalPathStep> steps;  ///< forward time order
  trace::Timestamp pathStart = 0;       ///< head node timestamp
  trace::Timestamp pathEnd = 0;         ///< latest rank-end timestamp
  trace::ProcessId endProcess = 0;      ///< rank the path ends on
  /// Local step time per rank (size = processCount).
  std::vector<std::uint64_t> rankTicks;
  /// Local step time per function (size = functionCount + 1; the last
  /// bucket collects time outside any known function).
  std::vector<std::uint64_t> functionTicks;
  /// Time on message edges (transfer plus receiver-side wait).
  std::uint64_t remoteTicks = 0;
  /// Sum of all step ticks — the share denominator. Equals
  /// pathEnd - pathStart on well-formed traces.
  std::uint64_t accountedTicks = 0;
  /// The backward walk hit its safety guard (cyclic timestamps on hostile
  /// input); the path is a prefix, every invariant above still holds.
  bool truncated = false;

  std::uint64_t untrackedTicks() const {
    return functionTicks.empty() ? 0 : functionTicks.back();
  }
};

/// Extract the critical path of `graph`. Deterministic (total tie-break:
/// latest dependency wins, local edge over remote on equal times, lower
/// rank on equal end times) and never throws.
CriticalPathResult extractCriticalPath(const DepGraph& graph);

/// Thresholds of detectSerialization().
struct SerializationOptions {
  /// A rank whose share of the critical path reaches this is "dominated":
  /// the path rarely leaves it (critical-path-dominated-rank).
  double rankShareThreshold = 0.5;
  /// A (rank, function) region whose share reaches this is a
  /// serialization bottleneck (serialization-bottleneck).
  double functionShareThreshold = 0.4;
  /// Detector is inert below this many processes: a near-serial trace
  /// trivially concentrates its critical path.
  std::size_t minProcesses = 2;

  bool operator==(const SerializationOptions& other) const = default;
};

/// Critical-path share of one rank.
struct RankCriticality {
  trace::ProcessId process = 0;
  std::uint64_t ticks = 0;
  double share = 0.0;  ///< ticks / accountedTicks
};

/// Critical-path share of one (rank, function) region.
struct RegionCriticality {
  trace::ProcessId process = 0;
  trace::FunctionId function = trace::kInvalidFunction;
  std::uint64_t ticks = 0;
  double share = 0.0;
};

/// Result of detectSerialization().
struct SerializationReport {
  /// Every rank with critical-path time, descending ticks (ties: rank
  /// ascending).
  std::vector<RankCriticality> ranks;
  /// Ranks at or above rankShareThreshold (subset of `ranks`, same order).
  std::vector<RankCriticality> dominatedRanks;
  /// (rank, function) regions at or above functionShareThreshold,
  /// descending ticks (ties: rank, then function ascending).
  std::vector<RegionCriticality> bottlenecks;
  std::uint64_t accountedTicks = 0;
  double remoteShare = 0.0;
};

/// GAPP-style serialization detection over an extracted critical path.
/// Inert (no dominated ranks, no bottlenecks; `ranks` still filled) when
/// the path never leaves a single rank: without a traversed cross-rank
/// dependency the share is plain longest-rank runtime, not serialization
/// evidence.
SerializationReport detectSerialization(const DepGraph& graph,
                                        const CriticalPathResult& path,
                                        const SerializationOptions& options = {});

/// Thresholds of detectIdleWaves().
struct IdleWaveOptions {
  /// Absolute wait floor (ticks) for a receive to count as a late arrival.
  std::uint64_t minWaitTicks = 0;
  /// Relative wait floor: fraction of the trace duration. The effective
  /// floor is max(minWaitTicks, minWaitShare * (endTime - startTime)), so
  /// ordinary jitter does not read as a wave.
  double minWaitShare = 0.01;
  /// A wave must touch at least this many distinct ranks to be reported.
  std::size_t minRanks = 3;

  bool operator==(const IdleWaveOptions& other) const = default;
};

/// One late arrival inside a wave: rank `process` idled `waitTicks`
/// because the message from `fromProcess` departed late.
struct IdleWaveHop {
  trace::ProcessId process = 0;
  trace::ProcessId fromProcess = 0;
  trace::Timestamp waitStart = 0;
  trace::Timestamp arriveTime = 0;  ///< receive completion
  std::uint64_t waitTicks = 0;
};

/// A propagating wavefront of late arrivals. Chains that trace back to
/// the same origin rank (e.g. the left- and right-moving fronts of a
/// stencil) are merged into one wave.
struct IdleWave {
  trace::ProcessId origin = 0;  ///< rank whose delay seeded the wave
  std::vector<IdleWaveHop> hops;  ///< arrival-time order
  std::size_t distinctRanks = 0;
  trace::Timestamp firstTime = 0;  ///< earliest hop waitStart
  trace::Timestamp lastTime = 0;   ///< latest hop arrival
  std::uint64_t maxWaitTicks = 0;
};

/// Result of detectIdleWaves().
struct IdleWaveReport {
  /// Qualified waves (>= minRanks distinct ranks), ordered by firstTime
  /// (ties: origin rank ascending).
  std::vector<IdleWave> waves;
  /// All late arrivals above the wait floor, waves or not.
  std::uint64_t lateArrivals = 0;
  /// The effective wait floor the run used (ticks).
  std::uint64_t effectiveMinWaitTicks = 0;
};

/// Wavefront detection over the matched message edges of `graph`.
IdleWaveReport detectIdleWaves(const DepGraph& graph,
                               const IdleWaveOptions& options = {});

/// Options of the combined analyzeDependencies() convenience entry.
struct DepAnalysisOptions {
  SyncClassifier sync{};
  SerializationOptions serialization{};
  IdleWaveOptions idleWave{};
  /// Execution only; results are identical for every value.
  std::size_t threads = 1;
  std::size_t grainSizeRanks = 1;
  util::ThreadPool* pool = nullptr;
};

/// The three analyses of one trace, plus the graph counters (the graph
/// itself is dropped; it can be large).
struct DepAnalysis {
  CriticalPathResult criticalPath;
  SerializationReport serialization;
  IdleWaveReport idleWaves;
  DepGraphStats graphStats;
  std::size_t processCount = 0;
};

/// Build the graph and run all three analyses. Never throws on trace
/// content; byte-identical results at every thread count.
DepAnalysis analyzeDependencies(const trace::TraceView& trace,
                                const DepAnalysisOptions& options = {});
DepAnalysis analyzeDependencies(trace::Trace&&,
                                const DepAnalysisOptions& = {}) = delete;

/// Human-readable dependency report (the `trace_tool critpath` text
/// output). Deterministic byte-for-byte function of the analysis.
std::string formatDepAnalysis(const trace::TraceView& trace,
                              const DepAnalysis& analysis);

/// Render a dependency analysis through the unified export path.
/// Supported formats: Text (formatDepAnalysis), Json, Csv (one row per
/// critical-path step); the analysis-specific CSV variants throw.
void exportDepAnalysis(const trace::TraceView& trace,
                       const DepAnalysis& analysis, ExportFormat format,
                       std::ostream& out);

/// Convenience string wrapper.
std::string exportDepAnalysisString(const trace::TraceView& trace,
                                    const DepAnalysis& analysis,
                                    ExportFormat format);

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_DEPGRAPH_HPP
