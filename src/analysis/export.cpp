#include "analysis/export.hpp"

#include <cstdint>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/json_writer.hpp"

namespace perfvar::analysis {

using util::JsonWriter;

namespace detail {

void writeSosMatrixCsv(const SosResult& sos, std::ostream& out) {
  const std::size_t cols = sos.maxSegmentsPerProcess();
  out << "process";
  for (std::size_t i = 0; i < cols; ++i) {
    out << ",iter" << i;
  }
  out << '\n';
  out.precision(12);
  for (std::size_t p = 0; p < sos.processCount(); ++p) {
    out << sos.trace().processName(static_cast<trace::ProcessId>(p));
    const auto& per = sos.process(static_cast<trace::ProcessId>(p));
    for (std::size_t i = 0; i < cols; ++i) {
      out << ',';
      if (i < per.size()) {
        out << sos.trace().toSeconds(per[i].sosTime);
      }
    }
    out << '\n';
  }
}

void writeIterationStatsCsv(const VariationReport& report, std::ostream& out) {
  out << "iteration,processes,minSos,meanSos,maxSos,stddevSos,meanDuration,"
         "imbalance,slowestProcess\n";
  out.precision(12);
  for (const auto& it : report.iterations) {
    out << it.iteration << ',' << it.processCount << ',' << it.minSos << ','
        << it.meanSos << ',' << it.maxSos << ',' << it.stddevSos << ','
        << it.meanDuration << ',' << it.imbalance << ',' << it.slowestProcess
        << '\n';
  }
}

void writeHotspotsCsv(const trace::TraceView& tr,
                      const VariationReport& report, std::ostream& out) {
  out << "process,processName,iteration,sosSeconds,durationSeconds,globalZ,"
         "iterationZ\n";
  out.precision(12);
  for (const auto& h : report.hotspots) {
    out << h.process << ",\"" << tr.processName(h.process) << "\","
        << h.iteration << ',' << h.sosSeconds << ',' << h.durationSeconds
        << ',' << h.globalZ << ',' << h.iterationZ << '\n';
  }
}

void writeAnalysisJson(const trace::TraceView& tr,
                       const DominantSelection& selection,
                       const SosResult& sos, const VariationReport& report,
                       std::ostream& out) {
  JsonWriter w(out);
  w.beginObject();

  w.key("trace");
  w.beginObject();
  w.key("processes");
  w.value(static_cast<std::uint64_t>(tr.processCount()));
  w.key("functions");
  w.value(static_cast<std::uint64_t>(tr.functions().size()));
  w.key("events");
  w.value(static_cast<std::uint64_t>(tr.eventCount()));
  w.key("durationSeconds");
  w.value(tr.durationSeconds());
  w.endObject();

  w.key("dominant");
  w.beginObject();
  w.key("function");
  w.value(sos.segmentFunction() == trace::kInvalidFunction
              ? std::string("(fixed time windows)")
              : tr.functions().name(sos.segmentFunction()));
  w.key("candidates");
  w.beginArray();
  for (const auto& c : selection.candidates) {
    w.beginObject();
    w.key("function");
    w.value(tr.functions().name(c.function));
    w.key("invocations");
    w.value(c.invocations);
    w.key("aggregatedInclusiveSeconds");
    w.value(tr.toSeconds(c.aggregatedInclusive));
    w.endObject();
  }
  w.endArray();
  w.endObject();

  w.key("processes");
  w.beginArray();
  for (const auto& ps : report.processes) {
    w.beginObject();
    w.key("process");
    w.value(static_cast<std::uint64_t>(ps.process));
    w.key("name");
    // Process ids index the trace the SOS analysis ran on — for degraded
    // inputs that is the filtered view, not `tr` (same object otherwise).
    w.value(sos.trace().processName(ps.process));
    w.key("segments");
    w.value(static_cast<std::uint64_t>(ps.segments));
    w.key("totalSos");
    w.value(ps.totalSos);
    w.key("meanSos");
    w.value(ps.meanSos);
    w.key("maxSos");
    w.value(ps.maxSos);
    w.key("totalZ");
    w.value(ps.totalZ);
    w.key("culprit");
    bool isCulprit = false;
    for (const auto c : report.culpritProcesses) {
      isCulprit |= c == ps.process;
    }
    w.value(isCulprit);
    w.endObject();
  }
  w.endArray();

  w.key("iterations");
  w.beginArray();
  for (const auto& it : report.iterations) {
    w.beginObject();
    w.key("iteration");
    w.value(static_cast<std::uint64_t>(it.iteration));
    w.key("meanSos");
    w.value(it.meanSos);
    w.key("maxSos");
    w.value(it.maxSos);
    w.key("meanDuration");
    w.value(it.meanDuration);
    w.key("imbalance");
    w.value(it.imbalance);
    w.key("slowestProcess");
    w.value(static_cast<std::uint64_t>(it.slowestProcess));
    w.endObject();
  }
  w.endArray();

  w.key("hotspots");
  w.beginArray();
  for (const auto& h : report.hotspots) {
    w.beginObject();
    w.key("process");
    w.value(static_cast<std::uint64_t>(h.process));
    w.key("iteration");
    w.value(static_cast<std::uint64_t>(h.iteration));
    w.key("sosSeconds");
    w.value(h.sosSeconds);
    w.key("globalZ");
    w.value(h.globalZ);
    w.key("iterationZ");
    w.value(h.iterationZ);
    w.endObject();
  }
  w.endArray();

  w.key("trend");
  w.beginObject();
  w.key("durationSlopePerIteration");
  w.value(report.durationTrend.slope);
  w.key("durationR2");
  w.value(report.durationTrend.r2);
  w.key("sosSlopePerIteration");
  w.value(report.sosTrend.slope);
  w.key("sosR2");
  w.value(report.sosTrend.r2);
  w.endObject();

  // Emitted only for degraded (Salvage-loaded) inputs, so clean-trace
  // output stays byte-for-byte unchanged.
  if (!tr.quarantined().empty()) {
    w.key("degradation");
    w.beginObject();
    w.key("analyzedProcesses");
    w.value(static_cast<std::uint64_t>(sos.trace().processCount()));
    w.key("quarantined");
    w.beginArray();
    for (const trace::QuarantinedRank& q : tr.quarantined()) {
      w.beginObject();
      w.key("process");
      w.value(static_cast<std::uint64_t>(q.process));
      w.key("name");
      w.value(q.name);
      w.key("error");
      w.value(std::string(errorCodeName(q.error)));
      w.key("bytesSalvaged");
      w.value(q.bytesSalvaged);
      w.key("eventsSalvaged");
      w.value(q.eventsSalvaged);
      w.key("eventsDropped");
      w.value(q.eventsDropped);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }

  w.endObject();
  out << '\n';
}

}  // namespace detail

void exportReport(const trace::TraceView& tr,
                  const DominantSelection& selection,
                  const SosResult& sos, const VariationReport& report,
                  ExportFormat format, std::ostream& out) {
  switch (format) {
    case ExportFormat::Text:
      out << formatAnalysis(tr, selection, sos, report);
      return;
    case ExportFormat::Json:
      detail::writeAnalysisJson(tr, selection, sos, report, out);
      return;
    case ExportFormat::Csv:
      detail::writeSosMatrixCsv(sos, out);
      return;
    case ExportFormat::CsvIterations:
      detail::writeIterationStatsCsv(report, out);
      return;
    case ExportFormat::CsvHotspots:
      // Hotspot process ids index the trace the SOS ran on (the filtered
      // view for degraded inputs; `tr` itself otherwise).
      detail::writeHotspotsCsv(sos.trace(), report, out);
      return;
  }
  PERFVAR_REQUIRE(false, "unknown ExportFormat");
}

void exportReport(const trace::TraceView& tr, const AnalysisResult& result,
                  ExportFormat format, std::ostream& out) {
  exportReport(tr, result.selection, *result.sos, result.variation, format,
               out);
}

std::string exportReportString(const trace::TraceView& tr,
                               const AnalysisResult& result,
                               ExportFormat format) {
  std::ostringstream os;
  exportReport(tr, result, format, os);
  return os.str();
}

}  // namespace perfvar::analysis
