#ifndef PERFVAR_ANALYSIS_OVERLAY_HPP
#define PERFVAR_ANALYSIS_OVERLAY_HPP

/// \file overlay.hpp
/// Metric-overlay construction (paper Section VI).
///
/// The paper feeds SOS-times back into the trace visualizer as a new
/// metric counter drawn over the timeline. MetricOverlay provides that
/// counter in two shapes:
///  * per-process step series over real trace time (value = SOS-time of
///    the segment covering an instant), and
///  * a time-sampled [process][bin] matrix ready for heatmap rendering.

#include <vector>

#include "analysis/sos.hpp"

namespace perfvar::analysis {

/// One step of the overlay counter: constant `value` over [start, end).
struct OverlayStep {
  trace::Timestamp start = 0;
  trace::Timestamp end = 0;
  double value = 0.0;
};

/// Per-process SOS-time counter over trace time.
class MetricOverlay {
public:
  /// Values used for the steps.
  enum class Value {
    SosSeconds,       ///< the SOS-time of the covering segment
    DurationSeconds,  ///< plain segment duration
    SyncSeconds,      ///< subtracted synchronization time
  };

  static MetricOverlay build(const SosResult& sos,
                             Value value = Value::SosSeconds);

  const std::vector<std::vector<OverlayStep>>& steps() const { return steps_; }

  /// Value at time `t` on process `p`; NaN between/outside segments.
  double at(trace::ProcessId p, trace::Timestamp t) const;

  /// Sample the overlay on a regular time grid spanning
  /// [traceStart, traceEnd] with `bins` columns. Cells not covered by any
  /// segment are NaN. Bin value is the overlay value at the bin center.
  std::vector<std::vector<double>> sampleGrid(std::size_t bins) const;

  trace::Timestamp startTime() const { return start_; }
  trace::Timestamp endTime() const { return end_; }

private:
  std::vector<std::vector<OverlayStep>> steps_;
  trace::Timestamp start_ = 0;
  trace::Timestamp end_ = 0;
};

/// Spread the rows of a matrix computed on a trace::dropQuarantined view
/// back onto the full rank space of `full`: row i of `filtered`
/// corresponds to the i-th non-quarantined rank; quarantined ranks get an
/// empty row (the heatmap renderers paint missing cells in the missing
/// color, or as a no-data band via HeatmapOptions::noDataRows). With no
/// quarantined ranks this returns `filtered` unchanged.
std::vector<std::vector<double>> expandQuarantinedRows(
    const std::vector<std::vector<double>>& filtered,
    const trace::TraceView& full);

/// Row indices of the quarantined ranks of `full`, ready to assign to
/// vis::HeatmapOptions::noDataRows next to expandQuarantinedRows().
std::vector<std::size_t> quarantinedRowIndices(const trace::TraceView& full);

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_OVERLAY_HPP
