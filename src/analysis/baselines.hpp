#ifndef PERFVAR_ANALYSIS_BASELINES_HPP
#define PERFVAR_ANALYSIS_BASELINES_HPP

/// \file baselines.hpp
/// Baseline detectors the paper compares against (implicitly or in its
/// related-work discussion), used by the ablation benches:
///
///  * ProfileOnlyDetector — the aggregated-profile view of TAU/HPCToolkit:
///    ranks processes by total exclusive compute time. It has no temporal
///    dimension, so transient problems (one interrupted invocation out of
///    thousands) are diluted and iterations cannot be localized.
///  * SegmentDurationDetector — segment durations without synchronization
///    subtraction (Section V's strawman): detects *when* iterations are
///    slow but, because barriers equalize durations, usually cannot tell
///    *which process* is responsible.
///
/// Both expose the same DetectionOutcome so benches can score them against
/// the full SOS analysis with a common metric (localization rank).

#include <optional>
#include <string>
#include <vector>

#include "analysis/sos.hpp"
#include "analysis/variation.hpp"
#include "profile/profile.hpp"

namespace perfvar::analysis {

/// Common outcome of a detector: processes ranked most-suspicious first,
/// plus (if the method has a temporal dimension) the most suspicious
/// iteration.
struct DetectionOutcome {
  std::string method;
  std::vector<trace::ProcessId> rankedProcesses;
  std::vector<double> scores;  ///< aligned with rankedProcesses
  std::optional<std::size_t> suspiciousIteration;

  /// 0-based rank of `process` in rankedProcesses (worst = 0);
  /// rankedProcesses.size() if absent.
  std::size_t rankOf(trace::ProcessId process) const;

  /// Separation of the top process' score from the remaining population:
  /// robust z of scores[0] against scores[1..]. Higher = clearer signal.
  double topSeparation() const;
};

/// Profile-only baseline: rank processes by total exclusive time of
/// non-synchronization functions.
DetectionOutcome detectByProfile(const trace::TraceView& trace,
                                 const SyncClassifier& classifier = {});

/// Segment-duration baseline: rank processes by total segment duration;
/// the suspicious iteration is the one with the slowest mean duration.
DetectionOutcome detectBySegmentDuration(const trace::TraceView& trace,
                                         trace::FunctionId segmentFunction);

/// Full method of the paper: rank processes by total SOS-time; the
/// suspicious iteration is the one holding the top hotspot (falling back
/// to the slowest mean SOS iteration).
DetectionOutcome detectBySos(const trace::TraceView& trace,
                             trace::FunctionId segmentFunction,
                             const SyncClassifier& classifier = {});

/// Build the outcome from an existing SOS result (avoids re-analysis).
DetectionOutcome outcomeFromSos(const SosResult& sos, const std::string& name);

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_BASELINES_HPP
