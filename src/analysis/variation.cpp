#include "analysis/variation.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace perfvar::analysis {

trace::ProcessId VariationReport::slowestProcess() const {
  PERFVAR_REQUIRE(!processesBySos.empty(), "report has no processes");
  return processesBySos.front();
}

VariationReport analyzeVariation(const SosResult& sos,
                                 const VariationOptions& options) {
  return detail::analyzeVariationImpl(
      sos, options,
      [](std::size_t n, const std::function<void(std::size_t)>& body) {
        for (std::size_t i = 0; i < n; ++i) {
          body(i);
        }
      });
}

namespace detail {

VariationReport analyzeVariationImpl(const SosResult& sos,
                                     const VariationOptions& options,
                                     const IndexRunner& run,
                                     bool referenceKernels) {
  VariationReport report;
  const auto& perProcess = sos.all();
  const std::size_t nProcs = perProcess.size();
  const std::size_t nIters = sos.maxSegmentsPerProcess();
  const double res = static_cast<double>(sos.trace().resolution());

  // ---- global SOS distribution -------------------------------------------
  const std::vector<double> allSos = sos.allSosSeconds();
  report.sosSummary = stats::summarize(allSos);
  report.sosMedian = stats::median(allSos);
  report.sosMad = stats::mad(allSos);
  const double globalScale = stats::kMadToSigma * report.sosMad;

  const auto globalZ = [&](double x) {
    if (globalScale > 0.0) {
      return (x - report.sosMedian) / globalScale;
    }
    return report.sosSummary.stddev > 0.0
               ? (x - report.sosSummary.mean) / report.sosSummary.stddev
               : 0.0;
  };

  // ---- per-iteration stats ------------------------------------------------
  // Every index writes only its own slot; the inner sums always walk the
  // processes in ascending order, so the result is runner-independent.
  report.iterations.resize(nIters);
  run(nIters, [&](std::size_t i) {
    std::vector<double> iterSos;
    IterationStats is;
    is.iteration = i;
    double durationSum = 0.0;
    double best = -1.0;
    for (std::size_t p = 0; p < nProcs; ++p) {
      if (i < perProcess[p].size()) {
        const auto& a = perProcess[p][i];
        const double v = static_cast<double>(a.sosTime) / res;
        iterSos.push_back(v);
        durationSum += static_cast<double>(a.segment.inclusive()) / res;
        if (v > best) {
          best = v;
          is.slowestProcess = static_cast<trace::ProcessId>(p);
        }
      }
    }
    is.processCount = iterSos.size();
    if (!iterSos.empty()) {
      const auto s = stats::summarize(iterSos);
      is.minSos = s.min;
      is.maxSos = s.max;
      is.meanSos = s.mean;
      is.stddevSos = s.stddev;
      is.meanDuration = durationSum / static_cast<double>(iterSos.size());
      is.imbalance = stats::imbalanceFactor(iterSos);
    }
    report.iterations[i] = is;
  });

  // ---- trends --------------------------------------------------------------
  {
    std::vector<double> meanDur(nIters), meanSos(nIters);
    for (std::size_t i = 0; i < nIters; ++i) {
      meanDur[i] = report.iterations[i].meanDuration;
      meanSos[i] = report.iterations[i].meanSos;
    }
    report.durationTrend = stats::olsTrend(meanDur);
    report.sosTrend = stats::olsTrend(meanSos);
  }

  // ---- per-process stats ----------------------------------------------------
  report.processes.resize(nProcs);
  std::vector<double> totals(nProcs, 0.0);
  run(nProcs, [&](std::size_t p) {
    ProcessStats ps;
    ps.process = static_cast<trace::ProcessId>(p);
    ps.segments = perProcess[p].size();
    for (const auto& a : perProcess[p]) {
      const double v = static_cast<double>(a.sosTime) / res;
      ps.totalSos += v;
      ps.maxSos = std::max(ps.maxSos, v);
    }
    if (ps.segments > 0) {
      ps.meanSos = ps.totalSos / static_cast<double>(ps.segments);
    }
    totals[p] = ps.totalSos;
    report.processes[p] = ps;
  });
  // Leave-one-out scoring: a single extreme process must not dilute its
  // own score by inflating the scale estimate. The batched kernel scores
  // all processes from one shared sort; the per-process rebuild loop it
  // replaced (kept below as the reference path) is O(P^2 log P) and was
  // the analyze wall at 10k+ ranks.
  if (referenceKernels) {
    run(nProcs, [&](std::size_t p) {
      std::vector<double> others;
      others.reserve(nProcs > 0 ? nProcs - 1 : 0);
      for (std::size_t q = 0; q < nProcs; ++q) {
        if (q != p) {
          others.push_back(totals[q]);
        }
      }
      report.processes[p].totalZ = stats::referenceZ(totals[p], others);
    });
  } else {
    const std::vector<double> totalZ = stats::leaveOneOutZ(totals);
    run(nProcs,
        [&](std::size_t p) { report.processes[p].totalZ = totalZ[p]; });
  }

  report.processesBySos.resize(nProcs);
  std::iota(report.processesBySos.begin(), report.processesBySos.end(), 0u);
  std::sort(report.processesBySos.begin(), report.processesBySos.end(),
            [&](trace::ProcessId a, trace::ProcessId b) {
              if (totals[a] != totals[b]) {
                return totals[a] > totals[b];
              }
              return a < b;
            });
  for (const trace::ProcessId p : report.processesBySos) {
    if (report.processes[p].totalZ >= options.processThreshold) {
      report.culpritProcesses.push_back(p);
    }
  }

  // ---- hotspots --------------------------------------------------------------
  // Collected per iteration into disjoint slots, then concatenated in
  // iteration order; the final sort key (globalZ, process, iteration) is a
  // total order, so the ranking is independent of the runner.
  std::vector<std::vector<Hotspot>> perIterHotspots(nIters);
  run(nIters, [&](std::size_t i) {
    std::vector<double> iterSos;
    std::vector<double> iterOthers;
    for (std::size_t p = 0; p < nProcs; ++p) {
      if (i < perProcess[p].size()) {
        iterSos.push_back(static_cast<double>(perProcess[p][i].sosTime) / res);
      }
    }
    // Leave-one-out iteration z, batched like the process scoring above;
    // computed lazily because most iterations have no hotspot at all.
    std::vector<double> iterZ;
    bool iterZReady = false;
    std::size_t compactIdx = 0;
    for (std::size_t p = 0; p < nProcs; ++p) {
      if (i >= perProcess[p].size()) {
        continue;
      }
      const std::size_t myIdx = compactIdx++;
      const auto& a = perProcess[p][i];
      const double v = static_cast<double>(a.sosTime) / res;
      const double gz = globalZ(v);
      if (gz >= options.outlierThreshold) {
        Hotspot h;
        h.process = static_cast<trace::ProcessId>(p);
        h.iteration = i;
        h.sosSeconds = v;
        h.durationSeconds = static_cast<double>(a.segment.inclusive()) / res;
        h.globalZ = gz;
        if (referenceKernels) {
          iterOthers.clear();
          for (std::size_t k = 0; k < iterSos.size(); ++k) {
            if (k != myIdx) {
              iterOthers.push_back(iterSos[k]);
            }
          }
          h.iterationZ = stats::referenceZ(v, iterOthers);
        } else {
          if (!iterZReady) {
            iterZ = stats::leaveOneOutZ(iterSos);
            iterZReady = true;
          }
          h.iterationZ = iterZ[myIdx];
        }
        perIterHotspots[i].push_back(h);
      }
    }
  });
  std::vector<Hotspot> hotspots;
  for (auto& per : perIterHotspots) {
    hotspots.insert(hotspots.end(), per.begin(), per.end());
  }
  std::sort(hotspots.begin(), hotspots.end(),
            [](const Hotspot& a, const Hotspot& b) {
              if (a.globalZ != b.globalZ) {
                return a.globalZ > b.globalZ;
              }
              if (a.process != b.process) {
                return a.process < b.process;
              }
              return a.iteration < b.iteration;
            });
  if (hotspots.size() > options.maxHotspots) {
    hotspots.resize(options.maxHotspots);
  }
  report.hotspots = std::move(hotspots);
  return report;
}

}  // namespace detail

std::string formatVariationReport(const SosResult& sos,
                                  const VariationReport& report,
                                  std::size_t maxRows) {
  std::ostringstream os;
  const auto& tr = sos.trace();
  os << "segmentation function: "
     << (sos.segmentFunction() == trace::kInvalidFunction
             ? std::string("(fixed time windows)")
             : tr.functions().name(sos.segmentFunction()))
     << "\n";
  os << "segments: " << report.sosSummary.count << " across "
     << report.processes.size() << " processes\n";
  os << "SOS-time: median " << fmt::seconds(report.sosMedian) << ", mean "
     << fmt::seconds(report.sosSummary.mean) << ", max "
     << fmt::seconds(report.sosSummary.max) << "\n";
  os << "duration trend: " << fmt::seconds(report.durationTrend.slope)
     << "/iteration (r2 " << fmt::fixed(report.durationTrend.r2, 2) << ")\n";
  os << "SOS trend:      " << fmt::seconds(report.sosTrend.slope)
     << "/iteration (r2 " << fmt::fixed(report.sosTrend.r2, 2) << ")\n";

  if (!report.culpritProcesses.empty()) {
    os << "culprit processes (robust z of total SOS >= threshold):\n";
    for (const auto p : report.culpritProcesses) {
      const auto& ps = report.processes[p];
      os << "  " << tr.processName(p) << "  total "
         << fmt::seconds(ps.totalSos) << "  z " << fmt::fixed(ps.totalZ, 2)
         << "\n";
    }
  } else {
    os << "no culprit process stands out at the process level\n";
  }

  if (!report.hotspots.empty()) {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"process", "iteration", "SOS", "duration", "global z",
                    "iteration z"});
    for (std::size_t i = 0; i < std::min(maxRows, report.hotspots.size());
         ++i) {
      const Hotspot& h = report.hotspots[i];
      rows.push_back({tr.processName(h.process),
                      std::to_string(h.iteration), fmt::seconds(h.sosSeconds),
                      fmt::seconds(h.durationSeconds),
                      fmt::fixed(h.globalZ, 2), fmt::fixed(h.iterationZ, 2)});
    }
    os << "top hotspots:\n" << fmt::table(rows);
    if (report.hotspots.size() > maxRows) {
      os << "... " << (report.hotspots.size() - maxRows)
         << " more hotspot(s)\n";
    }
  } else {
    os << "no segment-level hotspots above threshold\n";
  }
  return os.str();
}

}  // namespace perfvar::analysis
