#include "analysis/pipeline.hpp"

#include <sstream>

#include "analysis/parallel.hpp"
#include "util/error.hpp"

namespace perfvar::analysis {

AnalysisResult analyzeTrace(const trace::Trace& tr,
                            const PipelineOptions& options) {
  if (options.threads != 1) {
    return detail::analyzeTraceSharded(tr, options);
  }
  AnalysisResult result;
  result.profile = profile::FlatProfile::build(tr);
  result.selection = selectDominantFunction(tr, result.profile,
                                            options.dominant);
  PERFVAR_REQUIRE(result.selection.hasDominant(),
                  "no function qualifies as time-dominant; lower the "
                  "invocation multiplier or check the instrumentation");
  PERFVAR_REQUIRE(options.candidateIndex < result.selection.candidates.size(),
                  "candidateIndex exceeds the number of dominant candidates");
  result.segmentFunction =
      result.selection.candidates[options.candidateIndex].function;
  result.sos = std::make_unique<SosResult>(
      analyzeSos(tr, result.segmentFunction, options.sync));
  result.variation = analyzeVariation(*result.sos, options.variation);
  return result;
}

std::string formatAnalysis(const trace::Trace& tr,
                           const DominantSelection& selection,
                           const SosResult& sos,
                           const VariationReport& variation) {
  std::ostringstream os;
  os << "=== dominant-function selection ===\n"
     << formatSelection(tr, selection) << '\n'
     << "=== runtime-variation analysis ===\n"
     << formatVariationReport(sos, variation);
  return os.str();
}

std::string formatAnalysis(const trace::Trace& tr,
                           const AnalysisResult& result) {
  return formatAnalysis(tr, result.selection, *result.sos, result.variation);
}

}  // namespace perfvar::analysis
