#include "analysis/pipeline.hpp"

#include <sstream>

#include "analysis/parallel.hpp"
#include "trace/filter.hpp"
#include "util/error.hpp"

namespace perfvar::analysis {

AnalysisResult analyzeTrace(const trace::TraceView& tr,
                            const PipelineOptions& options) {
  if (!tr.quarantined().empty()) {
    // Degraded input (a Salvage-mode load): analyze the healthy ranks as
    // if the quarantined ones were never recorded. The sub-view shares
    // ownership of the filtered storage, so it rides along in the result.
    trace::TraceView view = tr.dropQuarantined();
    AnalysisResult result = analyzeTrace(view, options);
    result.salvagedView = view;
    return result;
  }
  if (options.threads != 1) {
    return detail::analyzeTraceSharded(tr, options);
  }
  AnalysisResult result;
  if (options.referenceKernels) {
    std::vector<std::vector<profile::FunctionStats>> perProcess(
        tr.processCount());
    for (std::size_t p = 0; p < tr.processCount(); ++p) {
      perProcess[p] = profile::FlatProfile::buildProcessReference(
          tr, static_cast<trace::ProcessId>(p));
    }
    result.profile =
        profile::FlatProfile::fromPerProcess(tr, std::move(perProcess));
  } else {
    result.profile = profile::FlatProfile::build(tr);
  }
  result.selection = selectDominantFunction(tr, result.profile,
                                            options.dominant);
  PERFVAR_REQUIRE(result.selection.hasDominant(),
                  "no function qualifies as time-dominant; lower the "
                  "invocation multiplier or check the instrumentation");
  PERFVAR_REQUIRE(options.candidateIndex < result.selection.candidates.size(),
                  "candidateIndex exceeds the number of dominant candidates");
  result.segmentFunction =
      result.selection.candidates[options.candidateIndex].function;
  if (options.referenceKernels) {
    const std::vector<bool> syncMask = options.sync.mask(tr);
    std::vector<std::vector<SegmentAnalysis>> perProcess(tr.processCount());
    for (std::size_t p = 0; p < tr.processCount(); ++p) {
      perProcess[p] = detail::analyzeSosProcessReference(
          tr, static_cast<trace::ProcessId>(p), result.segmentFunction,
          syncMask);
    }
    result.sos = std::make_unique<SosResult>(
        SosResult(tr, result.segmentFunction, std::move(perProcess)));
  } else {
    result.sos = std::make_unique<SosResult>(
        analyzeSos(tr, result.segmentFunction, options.sync));
  }
  result.variation = detail::analyzeVariationImpl(
      *result.sos, options.variation,
      [](std::size_t n, const std::function<void(std::size_t)>& body) {
        for (std::size_t i = 0; i < n; ++i) {
          body(i);
        }
      },
      options.referenceKernels);
  return result;
}

std::string formatDegradation(const trace::TraceView& tr) {
  if (tr.quarantined().empty()) {
    return {};
  }
  std::ostringstream os;
  os << "=== degraded input ===\n"
     << tr.quarantined().size() << '/' << tr.processCount()
     << " ranks quarantined; they are excluded from the analysis\n";
  for (const trace::QuarantinedRank& q : tr.quarantined()) {
    os << "  rank " << q.process << " \"" << q.name
       << "\": " << errorCodeName(q.error) << " (salvaged "
       << q.eventsSalvaged << " events, dropped " << q.eventsDropped
       << ")\n";
  }
  return os.str();
}

std::string formatAnalysis(const trace::TraceView& tr,
                           const DominantSelection& selection,
                           const SosResult& sos,
                           const VariationReport& variation) {
  std::ostringstream os;
  os << "=== dominant-function selection ===\n"
     << formatSelection(tr, selection) << '\n'
     << "=== runtime-variation analysis ===\n"
     << formatVariationReport(sos, variation);
  if (!tr.quarantined().empty()) {
    os << '\n' << formatDegradation(tr);
  }
  return os.str();
}

std::string formatAnalysis(const trace::TraceView& tr,
                           const AnalysisResult& result) {
  return formatAnalysis(tr, result.selection, *result.sos, result.variation);
}

}  // namespace perfvar::analysis
