#include "analysis/sos.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "trace/replay.hpp"
#include "util/error.hpp"
#include "util/perf_counters.hpp"

namespace perfvar::analysis {

SosResult::SosResult(const trace::TraceView& tr,
                     trace::FunctionId segmentFunction,
                     std::vector<std::vector<SegmentAnalysis>> perProcess)
    : view_(tr),
      segmentFunction_(segmentFunction),
      perProcess_(std::move(perProcess)) {
  PERFVAR_REQUIRE(perProcess_.size() == tr.processCount(),
                  "per-process result size mismatch");
}

const std::vector<SegmentAnalysis>& SosResult::process(
    trace::ProcessId p) const {
  PERFVAR_REQUIRE(p < perProcess_.size(), "invalid process id");
  return perProcess_[p];
}

std::size_t SosResult::maxSegmentsPerProcess() const {
  std::size_t n = 0;
  for (const auto& per : perProcess_) {
    n = std::max(n, per.size());
  }
  return n;
}

std::size_t SosResult::minSegmentsPerProcess() const {
  if (perProcess_.empty()) {
    return 0;
  }
  std::size_t n = perProcess_.front().size();
  for (const auto& per : perProcess_) {
    n = std::min(n, per.size());
  }
  return n;
}

double SosResult::sosSeconds(trace::ProcessId p, std::size_t i) const {
  const auto& per = process(p);
  PERFVAR_REQUIRE(i < per.size(), "invalid segment index");
  return view_.toSeconds(per[i].sosTime);
}

double SosResult::durationSeconds(trace::ProcessId p, std::size_t i) const {
  const auto& per = process(p);
  PERFVAR_REQUIRE(i < per.size(), "invalid segment index");
  return view_.toSeconds(per[i].segment.inclusive());
}

namespace {

std::vector<std::vector<double>> denseMatrix(
    const std::vector<std::vector<SegmentAnalysis>>& perProcess,
    std::size_t columns,
    const std::function<double(const SegmentAnalysis&)>& value) {
  std::vector<std::vector<double>> m(
      perProcess.size(),
      std::vector<double>(columns, std::numeric_limits<double>::quiet_NaN()));
  for (std::size_t p = 0; p < perProcess.size(); ++p) {
    for (std::size_t i = 0; i < perProcess[p].size() && i < columns; ++i) {
      m[p][i] = value(perProcess[p][i]);
    }
  }
  return m;
}

}  // namespace

std::vector<std::vector<double>> SosResult::sosMatrixSeconds() const {
  const double res = static_cast<double>(view_.resolution());
  return denseMatrix(perProcess_, maxSegmentsPerProcess(),
                     [res](const SegmentAnalysis& a) {
                       return static_cast<double>(a.sosTime) / res;
                     });
}

std::vector<std::vector<double>> SosResult::durationMatrixSeconds() const {
  const double res = static_cast<double>(view_.resolution());
  return denseMatrix(perProcess_, maxSegmentsPerProcess(),
                     [res](const SegmentAnalysis& a) {
                       return static_cast<double>(a.segment.inclusive()) / res;
                     });
}

std::vector<std::vector<double>> SosResult::metricMatrix(
    trace::MetricId m) const {
  PERFVAR_REQUIRE(m < view_.metrics().size(), "invalid metric id");
  return denseMatrix(perProcess_, maxSegmentsPerProcess(),
                     [m](const SegmentAnalysis& a) {
                       return m < a.metricDelta.size() ? a.metricDelta[m] : 0.0;
                     });
}

std::vector<double> SosResult::allSosSeconds() const {
  std::vector<double> out;
  for (const auto& per : perProcess_) {
    for (const auto& a : per) {
      out.push_back(view_.toSeconds(a.sosTime));
    }
  }
  return out;
}

std::vector<double> SosResult::syncFractionPerIteration() const {
  const std::size_t n = maxSegmentsPerProcess();
  std::vector<double> fractions(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sync = 0.0;
    double total = 0.0;
    for (const auto& per : perProcess_) {
      if (i < per.size()) {
        sync += static_cast<double>(per[i].syncTime);
        total += static_cast<double>(per[i].segment.inclusive());
      }
    }
    fractions[i] = total > 0.0 ? sync / total : 0.0;
  }
  return fractions;
}

namespace {

std::vector<double> perIterationMean(
    const std::vector<std::vector<SegmentAnalysis>>& perProcess, std::size_t n,
    double scale, trace::Timestamp SegmentAnalysis::* field) {
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& per : perProcess) {
      if (i < per.size()) {
        sum += static_cast<double>(per[i].*field);
        ++count;
      }
    }
    out[i] = count > 0 ? sum / (scale * static_cast<double>(count)) : 0.0;
  }
  return out;
}

}  // namespace

std::vector<double> SosResult::meanDurationPerIteration() const {
  const std::size_t n = maxSegmentsPerProcess();
  std::vector<double> out(n, 0.0);
  const double res = static_cast<double>(view_.resolution());
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& per : perProcess_) {
      if (i < per.size()) {
        sum += static_cast<double>(per[i].segment.inclusive());
        ++count;
      }
    }
    out[i] = count > 0 ? sum / (res * static_cast<double>(count)) : 0.0;
  }
  return out;
}

std::vector<double> SosResult::meanSosPerIteration() const {
  return perIterationMean(perProcess_, maxSegmentsPerProcess(),
                          static_cast<double>(view_.resolution()),
                          &SegmentAnalysis::sosTime);
}

std::vector<double> SosResult::totalSosPerProcess() const {
  std::vector<double> out(perProcess_.size(), 0.0);
  for (std::size_t p = 0; p < perProcess_.size(); ++p) {
    trace::Timestamp sum = 0;
    for (const auto& a : perProcess_[p]) {
      sum += a.sosTime;
    }
    out[p] = view_.toSeconds(sum);
  }
  return out;
}

std::vector<double> SosResult::totalMetricPerProcess(trace::MetricId m) const {
  PERFVAR_REQUIRE(m < view_.metrics().size(), "invalid metric id");
  std::vector<double> out(perProcess_.size(), 0.0);
  for (std::size_t p = 0; p < perProcess_.size(); ++p) {
    for (const auto& a : perProcess_[p]) {
      if (m < a.metricDelta.size()) {
        out[p] += a.metricDelta[m];
      }
    }
  }
  return out;
}

namespace {

/// Statically-typed replay visitor of the SOS hot loop: the same
/// per-process state machine as the reference implementation below, but
/// with every callback a plain member function so the replay walk inlines
/// it (no std::function dispatch per event).
struct SosProcessVisitor {
  const trace::TraceView& tr;
  trace::ProcessId p;
  trace::FunctionId segmentFunction;
  const std::vector<bool>& syncMask;
  std::size_t nMetrics;
  std::vector<SegmentAnalysis>& segments;
  detail::SosScratch& scratch;

  std::size_t segNesting = 0;     // nesting inside the segment function
  trace::Timestamp segStart = 0;  // enter of the outermost invocation
  SegmentAnalysis current{};      // accumulators of the open segment
  std::size_t syncNesting = 0;    // nesting inside sync functions
  trace::Timestamp syncStart = 0;
  std::array<std::size_t, kParadigmCount> paradigmNesting{};
  std::array<trace::Timestamp, kParadigmCount> paradigmStart{};

  void onEnter(trace::FunctionId fn, trace::Timestamp t, std::size_t) {
    if (fn == segmentFunction) {
      if (segNesting == 0) {
        current = SegmentAnalysis{};
        current.metricDelta.assign(nMetrics, 0.0);
        segStart = t;
      }
      ++segNesting;
    }
    if (segNesting > 0) {
      const auto& def = tr.functions().at(fn);
      const auto par = static_cast<std::size_t>(def.paradigm);
      if (paradigmNesting[par]++ == 0) {
        paradigmStart[par] = t;
      }
      if (syncMask[fn]) {
        if (syncNesting++ == 0) {
          syncStart = t;
        }
      }
    }
  }

  void onLeave(const trace::Frame& frame) {
    if (segNesting > 0) {
      const auto& def = tr.functions().at(frame.function);
      const auto par = static_cast<std::size_t>(def.paradigm);
      PERFVAR_ASSERT(paradigmNesting[par] > 0, "paradigm nesting underflow");
      if (--paradigmNesting[par] == 0) {
        current.paradigmTime[par] += frame.leaveTime - paradigmStart[par];
      }
      if (syncMask[frame.function]) {
        PERFVAR_ASSERT(syncNesting > 0, "sync nesting underflow");
        if (--syncNesting == 0) {
          current.syncTime += frame.leaveTime - syncStart;
        }
      }
    }
    if (frame.function == segmentFunction) {
      PERFVAR_ASSERT(segNesting > 0, "segment nesting underflow");
      if (--segNesting == 0) {
        current.segment.process = p;
        current.segment.index = static_cast<std::uint32_t>(segments.size());
        current.segment.enter = segStart;
        current.segment.leave = frame.leaveTime;
        const trace::Timestamp duration = current.segment.inclusive();
        PERFVAR_ASSERT(current.syncTime <= duration,
                       "sync time exceeds segment duration");
        current.sosTime = duration - current.syncTime;
        segments.push_back(std::move(current));
        current = SegmentAnalysis{};
      }
    }
  }

  void onMessage(bool, const trace::Event&) {}

  void onMetric(const trace::Event& e, std::size_t) {
    const trace::MetricId m = e.ref;
    const bool accumulated =
        tr.metrics().at(m).mode == trace::MetricMode::Accumulated;
    if (segNesting > 0 && !current.metricDelta.empty()) {
      if (accumulated) {
        const double base = scratch.seenMetric[m] ? scratch.lastMetric[m] : 0.0;
        current.metricDelta[m] += e.value - base;
      } else {
        current.metricDelta[m] = e.value;
      }
    }
    scratch.lastMetric[m] = e.value;
    scratch.seenMetric[m] = true;
  }
};

}  // namespace

namespace detail {

std::vector<SegmentAnalysis> analyzeSosProcess(
    const trace::TraceView& tr, trace::ProcessId p,
    trace::FunctionId segmentFunction, const std::vector<bool>& syncMask,
    SosScratch& scratch) {
  PERFVAR_REQUIRE(p < tr.processCount(), "invalid process id");
  const std::size_t nMetrics = tr.metrics().size();
  scratch.lastMetric.assign(nMetrics, 0.0);
  scratch.seenMetric.assign(nMetrics, false);
  std::vector<SegmentAnalysis> segments;
  const trace::RankPin pin = tr.rank(p);
  // A segment costs at least an enter/leave pair; clamp the guess so a
  // pathological rank cannot reserve unbounded memory up front.
  segments.reserve(std::min<std::size_t>(pin.events().size() / 2, 4096));
  SosProcessVisitor visitor{tr,       p,       segmentFunction, syncMask,
                            nMetrics, segments, scratch};
  trace::replayEventsWith(pin.events(), visitor);
  PERFVAR_COUNTER_ADD("sos.segments", segments.size());
  return segments;
}

std::vector<SegmentAnalysis> analyzeSosProcess(
    const trace::TraceView& tr, trace::ProcessId p,
    trace::FunctionId segmentFunction, const std::vector<bool>& syncMask) {
  SosScratch scratch;
  return analyzeSosProcess(tr, p, segmentFunction, syncMask, scratch);
}

std::vector<SegmentAnalysis> analyzeSosProcessReference(
    const trace::TraceView& tr, trace::ProcessId p,
    trace::FunctionId segmentFunction, const std::vector<bool>& syncMask) {
  PERFVAR_REQUIRE(p < tr.processCount(), "invalid process id");
  const std::size_t nMetrics = tr.metrics().size();
  std::vector<SegmentAnalysis> segments;

  // Per-process replay state.
  std::size_t segNesting = 0;       // nesting inside the segment function
  trace::Timestamp segStart = 0;    // enter of the outermost invocation
  SegmentAnalysis current;          // accumulators of the open segment
  std::size_t syncNesting = 0;      // nesting inside sync functions
  trace::Timestamp syncStart = 0;
  std::array<std::size_t, kParadigmCount> paradigmNesting{};
  std::array<trace::Timestamp, kParadigmCount> paradigmStart{};
  // Last observed cumulative value of every metric (for deltas).
  std::vector<double> lastMetric(nMetrics, 0.0);
  std::vector<bool> seenMetric(nMetrics, false);

  const auto beginSegment = [&](trace::Timestamp t) {
    current = SegmentAnalysis{};
    current.metricDelta.assign(nMetrics, 0.0);
    segStart = t;
  };

  trace::ReplayVisitor v;
  v.onEnter = [&](trace::FunctionId fn, trace::Timestamp t, std::size_t) {
    if (fn == segmentFunction) {
      if (segNesting == 0) {
        beginSegment(t);
      }
      ++segNesting;
    }
    if (segNesting > 0) {
      const auto& def = tr.functions().at(fn);
      const auto par = static_cast<std::size_t>(def.paradigm);
      if (paradigmNesting[par]++ == 0) {
        paradigmStart[par] = t;
      }
      if (syncMask[fn]) {
        if (syncNesting++ == 0) {
          syncStart = t;
        }
      }
    }
  };
  v.onLeave = [&](const trace::Frame& frame) {
    if (segNesting > 0) {
      const auto& def = tr.functions().at(frame.function);
      const auto par = static_cast<std::size_t>(def.paradigm);
      PERFVAR_ASSERT(paradigmNesting[par] > 0, "paradigm nesting underflow");
      if (--paradigmNesting[par] == 0) {
        current.paradigmTime[par] += frame.leaveTime - paradigmStart[par];
      }
      if (syncMask[frame.function]) {
        PERFVAR_ASSERT(syncNesting > 0, "sync nesting underflow");
        if (--syncNesting == 0) {
          current.syncTime += frame.leaveTime - syncStart;
        }
      }
    }
    if (frame.function == segmentFunction) {
      PERFVAR_ASSERT(segNesting > 0, "segment nesting underflow");
      if (--segNesting == 0) {
        current.segment.process = p;
        current.segment.index =
            static_cast<std::uint32_t>(segments.size());
        current.segment.enter = segStart;
        current.segment.leave = frame.leaveTime;
        const trace::Timestamp duration = current.segment.inclusive();
        PERFVAR_ASSERT(current.syncTime <= duration,
                       "sync time exceeds segment duration");
        current.sosTime = duration - current.syncTime;
        segments.push_back(std::move(current));
        current = SegmentAnalysis{};
      }
    }
  };
  v.onMetric = [&](const trace::Event& e, std::size_t) {
    const trace::MetricId m = e.ref;
    const bool accumulated =
        tr.metrics().at(m).mode == trace::MetricMode::Accumulated;
    if (segNesting > 0 && !current.metricDelta.empty()) {
      if (accumulated) {
        const double base = seenMetric[m] ? lastMetric[m] : 0.0;
        current.metricDelta[m] += e.value - base;
      } else {
        current.metricDelta[m] = e.value;
      }
    }
    lastMetric[m] = e.value;
    seenMetric[m] = true;
  };
  const trace::RankPin pin = tr.rank(p);
  trace::replayEvents(pin.events(), v);
  return segments;
}

}  // namespace detail

SosResult analyzeSos(const trace::TraceView& tr,
                     trace::FunctionId segmentFunction,
                     const SyncClassifier& classifier) {
  PERFVAR_REQUIRE(segmentFunction < tr.functions().size(),
                  "segmentation function is not defined in this trace");
  const std::vector<bool> syncMask = classifier.mask(tr);
  std::vector<std::vector<SegmentAnalysis>> perProcess(tr.processCount());
  for (trace::ProcessId p = 0; p < tr.processCount(); ++p) {
    perProcess[p] = detail::analyzeSosProcess(tr, p, segmentFunction, syncMask);
  }
  return SosResult(tr, segmentFunction, std::move(perProcess));
}

SosResult analyzeSegmentDurations(const trace::TraceView& tr,
                                  trace::FunctionId segmentFunction) {
  return analyzeSos(tr, segmentFunction, SyncClassifier::none());
}

SosResult analyzeSosWindows(const trace::TraceView& tr,
                            trace::Timestamp windowTicks,
                            const SyncClassifier& classifier) {
  PERFVAR_REQUIRE(windowTicks > 0, "window length must be positive");
  const trace::Timestamp start = tr.startTime();
  const trace::Timestamp end = tr.endTime();
  PERFVAR_REQUIRE(end > start, "trace has no time span");
  const std::size_t windows = static_cast<std::size_t>(
      (end - start + windowTicks - 1) / windowTicks);
  PERFVAR_REQUIRE(windows <= (1u << 24), "too many windows");
  const std::vector<bool> syncMask = classifier.mask(tr);
  const std::size_t nMetrics = tr.metrics().size();

  std::vector<std::vector<SegmentAnalysis>> perProcess(tr.processCount());
  for (trace::ProcessId p = 0; p < tr.processCount(); ++p) {
    auto& segs = perProcess[p];
    segs.resize(windows);
    for (std::size_t w = 0; w < windows; ++w) {
      auto& seg = segs[w];
      seg.segment.process = p;
      seg.segment.index = static_cast<std::uint32_t>(w);
      seg.segment.enter = start + static_cast<trace::Timestamp>(w) *
                                      windowTicks;
      seg.segment.leave =
          std::min(end, seg.segment.enter + windowTicks);
      seg.metricDelta.assign(nMetrics, 0.0);
    }

    const auto windowOf = [&](trace::Timestamp t) {
      return std::min(windows - 1,
                      static_cast<std::size_t>((t - start) / windowTicks));
    };
    // Distribute an interval's overlap over the windows it spans.
    const auto addInterval = [&](trace::Timestamp a, trace::Timestamp b,
                                 auto&& apply) {
      if (b <= a) {
        return;
      }
      for (std::size_t w = windowOf(a); w < windows; ++w) {
        const auto& seg = segs[w].segment;
        const trace::Timestamp lo = std::max(a, seg.enter);
        const trace::Timestamp hi = std::min(b, seg.leave);
        if (hi > lo) {
          apply(segs[w], hi - lo);
        }
        if (seg.leave >= b) {
          break;
        }
      }
    };

    std::size_t syncNesting = 0;
    trace::Timestamp syncStart = 0;
    std::vector<double> lastMetric(nMetrics, 0.0);
    std::vector<bool> seenMetric(nMetrics, false);

    trace::ReplayVisitor v;
    v.onEnter = [&](trace::FunctionId fn, trace::Timestamp t, std::size_t) {
      if (syncMask[fn] && syncNesting++ == 0) {
        syncStart = t;
      }
    };
    v.onLeave = [&](const trace::Frame& frame) {
      if (syncMask[frame.function]) {
        PERFVAR_ASSERT(syncNesting > 0, "sync nesting underflow");
        if (--syncNesting == 0) {
          addInterval(syncStart, frame.leaveTime,
                      [](SegmentAnalysis& seg, trace::Timestamp ticks) {
                        seg.syncTime += ticks;
                        seg.paradigmTime[static_cast<std::size_t>(
                            trace::Paradigm::MPI)] += ticks;
                      });
        }
      }
    };
    v.onMetric = [&](const trace::Event& e, std::size_t) {
      const trace::MetricId m = e.ref;
      auto& seg = segs[windowOf(e.time)];
      if (tr.metrics().at(m).mode == trace::MetricMode::Accumulated) {
        const double base = seenMetric[m] ? lastMetric[m] : 0.0;
        seg.metricDelta[m] += e.value - base;
      } else {
        seg.metricDelta[m] = e.value;
      }
      lastMetric[m] = e.value;
      seenMetric[m] = true;
    };
    const trace::RankPin pin = tr.rank(p);
    trace::replayEvents(pin.events(), v);

    for (auto& seg : segs) {
      const trace::Timestamp duration = seg.segment.inclusive();
      PERFVAR_ASSERT(seg.syncTime <= duration,
                     "window sync exceeds window span");
      seg.sosTime = duration - seg.syncTime;
    }
  }
  return SosResult(tr, trace::kInvalidFunction, std::move(perProcess));
}

}  // namespace perfvar::analysis
