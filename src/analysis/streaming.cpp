#include "analysis/streaming.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"

namespace perfvar::analysis {

std::string formatStreamingAlert(const trace::Trace& trace,
                                 const StreamingAlert& alert) {
  const trace::ProcessId p = alert.segment.segment.process;
  const std::string name = p < trace.processCount()
                               ? trace.processes[p].name
                               : std::string{};
  return "alert: process " + std::to_string(p) + " \"" + name +
         "\" segment " + std::to_string(alert.segment.segment.index) +
         " sos " + fmt::seconds(trace.toSeconds(alert.segment.sosTime)) +
         " z " + fmt::fixed(alert.robustZ, 2);
}

StreamingSos::StreamingSos(const trace::Trace& definitions,
                           trace::FunctionId segmentFunction,
                           const StreamingOptions& options)
    : defs_(&definitions),
      segmentFunction_(segmentFunction),
      options_(options) {
  PERFVAR_REQUIRE(segmentFunction < definitions.functions.size(),
                  "segmentation function is not defined");
  syncMask_ = options_.classifier.mask(definitions);
  states_.resize(definitions.processCount());
  for (auto& st : states_) {
    st.lastMetric.assign(definitions.metrics.size(), 0.0);
    st.seenMetric.assign(definitions.metrics.size(), false);
  }
}

void StreamingSos::completeSegment(trace::ProcessId p,
                                   trace::Timestamp leaveTime) {
  ProcessState& st = states_[p];
  st.current.segment.process = p;
  st.current.segment.index = st.segmentsDone++;
  st.current.segment.enter = st.segStart;
  st.current.segment.leave = leaveTime;
  const trace::Timestamp duration = st.current.segment.inclusive();
  PERFVAR_ASSERT(st.current.syncTime <= duration,
                 "sync time exceeds segment duration");
  st.current.sosTime = duration - st.current.syncTime;
  ++completed_;

  const double sosSeconds = defs_->toSeconds(st.current.sosTime);
  if (onAlert_ && sosHistory_.size() >= options_.warmupSegments) {
    const double z = stats::robustZ(sosSeconds, sosHistory_);
    if (z >= options_.alertThreshold) {
      onAlert_(StreamingAlert{st.current, z});
    }
  }
  sosHistory_.push_back(sosSeconds);

  if (onSegment_) {
    onSegment_(st.current);
  }
  st.current = SegmentAnalysis{};
}

void StreamingSos::onEvent(trace::ProcessId p, const trace::Event& e) {
  PERFVAR_REQUIRE(p < states_.size(), "invalid process id");
  ProcessState& st = states_[p];
  switch (e.kind) {
    case trace::EventKind::Enter: {
      const trace::FunctionId fn = e.ref;
      PERFVAR_REQUIRE(fn < defs_->functions.size(), "undefined function");
      if (fn == segmentFunction_) {
        if (st.segNesting == 0) {
          st.current = SegmentAnalysis{};
          st.current.metricDelta.assign(defs_->metrics.size(), 0.0);
          st.segStart = e.time;
        }
        ++st.segNesting;
      }
      if (st.segNesting > 0) {
        const auto par = static_cast<std::size_t>(
            defs_->functions.at(fn).paradigm);
        if (st.paradigmNesting[par]++ == 0) {
          st.paradigmStart[par] = e.time;
        }
        if (syncMask_[fn] && st.syncNesting++ == 0) {
          st.syncStart = e.time;
        }
      }
      st.stack.push_back(fn);
      break;
    }
    case trace::EventKind::Leave: {
      PERFVAR_REQUIRE(!st.stack.empty() && st.stack.back() == e.ref,
                      "streaming: unbalanced enter/leave");
      st.stack.pop_back();
      const trace::FunctionId fn = e.ref;
      if (st.segNesting > 0) {
        const auto par = static_cast<std::size_t>(
            defs_->functions.at(fn).paradigm);
        PERFVAR_ASSERT(st.paradigmNesting[par] > 0,
                       "paradigm nesting underflow");
        if (--st.paradigmNesting[par] == 0) {
          st.current.paradigmTime[par] += e.time - st.paradigmStart[par];
        }
        if (syncMask_[fn]) {
          PERFVAR_ASSERT(st.syncNesting > 0, "sync nesting underflow");
          if (--st.syncNesting == 0) {
            st.current.syncTime += e.time - st.syncStart;
          }
        }
      }
      if (fn == segmentFunction_) {
        PERFVAR_ASSERT(st.segNesting > 0, "segment nesting underflow");
        if (--st.segNesting == 0) {
          completeSegment(p, e.time);
        }
      }
      break;
    }
    case trace::EventKind::Metric: {
      const trace::MetricId m = e.ref;
      PERFVAR_REQUIRE(m < defs_->metrics.size(), "undefined metric");
      if (st.segNesting > 0 && !st.current.metricDelta.empty()) {
        if (defs_->metrics.at(m).mode == trace::MetricMode::Accumulated) {
          const double base = st.seenMetric[m] ? st.lastMetric[m] : 0.0;
          st.current.metricDelta[m] += e.value - base;
        } else {
          st.current.metricDelta[m] = e.value;
        }
      }
      st.lastMetric[m] = e.value;
      st.seenMetric[m] = true;
      break;
    }
    case trace::EventKind::MpiSend:
    case trace::EventKind::MpiRecv:
      break;  // messages carry no SOS information beyond their frames
  }
}

void StreamingSos::finish() {
  for (trace::ProcessId p = 0; p < states_.size(); ++p) {
    PERFVAR_REQUIRE(states_[p].stack.empty(),
                    "streaming: process " + std::to_string(p) +
                        " has unclosed frames at finish");
  }
}

void StreamingSos::feed(const trace::Trace& tr) {
  // Interleave the per-process streams in global time order (stable by
  // process id), as a live measurement system would deliver them. A
  // min-heap on (time, process) delivers the exact pop order of the
  // former linear scan — the minimum over all cursors with the process id
  // as tie-break — at O(log P) instead of O(P) per event.
  struct Cursor {
    trace::Timestamp time;
    trace::ProcessId process;
    std::size_t index;
  };
  const auto later = [](const Cursor& a, const Cursor& b) {
    return a.time > b.time || (a.time == b.time && a.process > b.process);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(later);
  for (trace::ProcessId p = 0; p < tr.processes.size(); ++p) {
    if (!tr.processes[p].events.empty()) {
      heap.push(Cursor{tr.processes[p].events.front().time, p, 0});
    }
  }
  while (!heap.empty()) {
    Cursor cursor = heap.top();
    heap.pop();
    const auto& events = tr.processes[cursor.process].events;
    onEvent(cursor.process, events[cursor.index]);
    if (++cursor.index < events.size()) {
      cursor.time = events[cursor.index].time;
      heap.push(cursor);
    }
  }
}

void StreamingSos::replay(const trace::Trace& tr, StreamingSos& analyzer) {
  analyzer.feed(tr);
  analyzer.finish();
}

}  // namespace perfvar::analysis
