#include "analysis/dominant.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace perfvar::analysis {

const DominantCandidate& DominantSelection::dominant() const {
  PERFVAR_REQUIRE(!candidates.empty(), "no dominant function was found");
  return candidates.front();
}

DominantSelection selectDominantFunction(const trace::TraceView& tr,
                                         const profile::FlatProfile& profile,
                                         const DominantOptions& options) {
  PERFVAR_REQUIRE(options.invocationMultiplier >= 1,
                  "invocationMultiplier must be at least 1");
  const std::uint64_t required =
      options.invocationMultiplier * static_cast<std::uint64_t>(tr.processCount());
  const std::vector<bool> syncMask =
      options.excludeSynchronization
          ? options.syncClassifier.mask(tr)
          : std::vector<bool>(tr.functions().size(), false);

  DominantSelection sel;
  for (const profile::FunctionStats& s : profile.byInclusiveTime()) {
    if (syncMask[s.function]) {
      continue;
    }
    if (s.invocations >= required) {
      sel.candidates.push_back(
          DominantCandidate{s.function, s.invocations, s.inclusive});
    } else if (sel.candidates.empty()) {
      // Functions that outrank the eventual winner but fail the
      // invocation-count requirement (e.g. `main`).
      sel.rejectedTopLevel.push_back(
          DominantCandidate{s.function, s.invocations, s.inclusive});
    }
  }
  return sel;
}

DominantSelection selectDominantFunction(const trace::TraceView& tr,
                                         const DominantOptions& options) {
  const auto profile = profile::FlatProfile::build(tr);
  return selectDominantFunction(tr, profile, options);
}

std::string formatSelection(const trace::TraceView& tr,
                            const DominantSelection& sel,
                            std::size_t maxCandidates) {
  std::ostringstream os;
  if (!sel.rejectedTopLevel.empty()) {
    os << "rejected (too few invocations):\n";
    for (const auto& c : sel.rejectedTopLevel) {
      os << "  " << tr.functions().name(c.function) << "  inclusive "
         << fmt::seconds(tr.toSeconds(c.aggregatedInclusive)) << ", "
         << c.invocations << " invocation(s)\n";
    }
  }
  if (sel.candidates.empty()) {
    os << "no function qualifies as time-dominant\n";
    return os.str();
  }
  os << "candidates (ranked by aggregated inclusive time):\n";
  const std::size_t n = std::min(maxCandidates, sel.candidates.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& c = sel.candidates[i];
    os << "  " << (i == 0 ? "[dominant] " : "           ")
       << tr.functions().name(c.function) << "  inclusive "
       << fmt::seconds(tr.toSeconds(c.aggregatedInclusive)) << ", "
       << c.invocations << " invocation(s)\n";
  }
  if (sel.candidates.size() > n) {
    os << "  ... " << (sel.candidates.size() - n) << " more\n";
  }
  return os.str();
}

}  // namespace perfvar::analysis
