#ifndef PERFVAR_ANALYSIS_STREAMING_HPP
#define PERFVAR_ANALYSIS_STREAMING_HPP

/// \file streaming.hpp
/// Incremental (in-situ) SOS analysis.
///
/// The paper notes: "In-situ analysis while the target application is
/// still running is feasible as well, but the performance analysis suite
/// that we use for our prototype does not support such a workflow." This
/// module implements that extension: StreamingSos consumes events one at
/// a time (per process, in timestamp order, e.g. directly from a
/// measurement layer) and emits each segment's SegmentAnalysis the moment
/// the segment completes - no trace file needed. It also maintains a
/// running robust hotspot monitor so anomalies are flagged while the
/// application still runs.
///
/// Equivalence: feeding a complete trace through StreamingSos yields
/// exactly the per-segment results of the post-mortem analyzeSos()
/// (verified by property tests).

#include <functional>
#include <vector>

#include "analysis/sos.hpp"
#include "analysis/sync.hpp"
#include "trace/trace.hpp"

namespace perfvar::analysis {

/// Callback invoked on every completed segment.
using SegmentCallback = std::function<void(const SegmentAnalysis&)>;

/// Online anomaly alert: a completed segment whose SOS-time is a robust
/// outlier against everything seen so far.
struct StreamingAlert {
  SegmentAnalysis segment;
  double robustZ = 0.0;
};

/// One-line deterministic rendering of an alert, e.g.
/// "alert: process 3 \"Rank 3\" segment 17 sos 12.34 ms z 5.67".
/// `trace` supplies the process name and timestamp resolution. Used by
/// the analysis server's Alert frames and the in-situ monitor example.
std::string formatStreamingAlert(const trace::Trace& trace,
                                 const StreamingAlert& alert);

/// Options of the streaming analyzer.
struct StreamingOptions {
  SyncClassifier classifier{};
  /// Robust-z threshold of the online hotspot monitor.
  double alertThreshold = 4.0;
  /// Number of segments to observe before alerts may fire (warm-up).
  std::size_t warmupSegments = 32;
};

/// Incremental SOS analyzer over one or more process event streams.
class StreamingSos {
public:
  /// `trace` provides the definitions (functions, metrics, resolution);
  /// its event streams are NOT read - feed events via onEvent().
  StreamingSos(const trace::Trace& definitions,
               trace::FunctionId segmentFunction,
               const StreamingOptions& options = {});

  /// Feed the next event of process `p` (timestamps non-decreasing per
  /// process). Invokes `onSegment` for each completed segment and
  /// `onAlert` (optional) when the online monitor flags it.
  void onEvent(trace::ProcessId p, const trace::Event& event);

  /// Register sinks. Must be set before feeding events that complete
  /// segments; may be null.
  void setSegmentCallback(SegmentCallback cb) { onSegment_ = std::move(cb); }
  void setAlertCallback(std::function<void(const StreamingAlert&)> cb) {
    onAlert_ = std::move(cb);
  }

  /// Segments completed so far (across all processes).
  std::size_t segmentsCompleted() const { return completed_; }

  /// Finish the streams: verifies all stacks are empty (a live in-situ
  /// consumer would instead call this at MPI_Finalize time).
  void finish();

  /// Feed every event of `chunk` in global (time, process) order WITHOUT
  /// finishing: frames may stay open across the chunk boundary. This is
  /// the analysis server's `append` path — feeding the chunks of
  /// trace::splitByTime() in order visits events exactly like one replay()
  /// of the whole trace (minus the final finish()). `chunk` only supplies
  /// events; definitions remain the ones given at construction.
  void feed(const trace::Trace& chunk);

  /// Convenience: replay a complete trace through the streaming analyzer
  /// (events interleaved across processes in time order); equivalent to
  /// feed(trace) followed by finish().
  static void replay(const trace::Trace& trace, StreamingSos& analyzer);

private:
  struct ProcessState {
    std::vector<trace::FunctionId> stack;
    std::size_t segNesting = 0;
    trace::Timestamp segStart = 0;
    SegmentAnalysis current;
    std::size_t syncNesting = 0;
    trace::Timestamp syncStart = 0;
    std::array<std::size_t, kParadigmCount> paradigmNesting{};
    std::array<trace::Timestamp, kParadigmCount> paradigmStart{};
    std::vector<double> lastMetric;
    std::vector<bool> seenMetric;
    std::uint32_t segmentsDone = 0;
  };

  void completeSegment(trace::ProcessId p, trace::Timestamp leaveTime);

  const trace::Trace* defs_;
  trace::FunctionId segmentFunction_;
  StreamingOptions options_;
  std::vector<bool> syncMask_;
  std::vector<ProcessState> states_;
  SegmentCallback onSegment_;
  std::function<void(const StreamingAlert&)> onAlert_;
  std::vector<double> sosHistory_;  ///< seconds, for the online monitor
  std::size_t completed_ = 0;
};

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_STREAMING_HPP
