#ifndef PERFVAR_ANALYSIS_SYNC_HPP
#define PERFVAR_ANALYSIS_SYNC_HPP

/// \file sync.hpp
/// Classification of synchronization/communication functions.
///
/// The SOS-time computation (paper Section V) subtracts the runtime of
/// synchronization operations (MPI_Wait, MPI_Reduce, omp barrier, ...)
/// from segment durations. SyncClassifier decides which functions count
/// as synchronization. Three policies are provided:
///
///  * Paradigm   — every function of a communication paradigm (MPI/OpenMP
///                 synchronization constructs) counts. This matches the
///                 paper's case studies, where whole "MPI" regions are
///                 subtracted.
///  * BlockingOnly — only operations that can block on remote progress
///                 (waits, barriers, collectives, blocking point-to-point);
///                 local-completion calls like MPI_Isend keep their cost.
///  * Custom     — a user predicate.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "trace/view.hpp"

namespace perfvar::analysis {

/// Selection policy for synchronization functions.
enum class SyncPolicy {
  Paradigm,
  BlockingOnly,
  Custom,
};

/// Decides whether a function counts as synchronization/communication.
class SyncClassifier {
public:
  /// Default classifier: Paradigm policy.
  SyncClassifier();

  explicit SyncClassifier(SyncPolicy policy);

  /// Custom-policy classifier from a predicate over function definitions.
  explicit SyncClassifier(
      std::function<bool(const trace::FunctionDef&)> predicate);

  /// A classifier that never classifies anything as synchronization.
  /// With it, SOS-time degenerates to the plain segment duration - the
  /// baseline the paper argues against in Section V.
  static SyncClassifier none();

  /// True if the function counts as synchronization.
  bool isSync(const trace::FunctionDef& def) const;

  /// Precompute the per-function-id decision vector for one trace.
  std::vector<bool> mask(const trace::TraceView& trace) const;

  SyncPolicy policy() const { return policy_; }

  /// Stable cache token used by the analysis engine to fingerprint a
  /// classifier: two classifiers with the same token classify every
  /// function identically. The built-in policies (Paradigm, BlockingOnly,
  /// none()) have fixed tokens, so independently constructed instances
  /// share cached results. Every Custom-predicate classifier draws a fresh
  /// token at construction (copies keep it): the engine cannot inspect a
  /// std::function, so distinct custom classifiers are conservatively
  /// treated as different even when their predicates are equivalent.
  std::uint64_t cacheToken() const { return token_; }

  /// True if an MPI function name denotes an operation that can block on
  /// remote progress (used by the BlockingOnly policy). Exposed for tests.
  static bool isBlockingMpiName(const std::string& name);

  /// True if an OpenMP construct name denotes synchronization
  /// (barriers, critical sections, taskwait...). Exposed for tests.
  static bool isOpenMpSyncName(const std::string& name);

private:
  SyncPolicy policy_;
  std::uint64_t token_ = 0;
  std::function<bool(const trace::FunctionDef&)> predicate_;
};

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_SYNC_HPP
