#include "analysis/segments.hpp"

#include <algorithm>

#include "trace/replay.hpp"
#include "util/error.hpp"

namespace perfvar::analysis {

namespace detail {

std::vector<Segment> extractSegmentsProcess(const trace::TraceView& tr,
                                            trace::ProcessId p,
                                            trace::FunctionId f) {
  PERFVAR_REQUIRE(p < tr.processCount(), "invalid process id");
  std::vector<Segment> result;
  std::size_t nesting = 0;      // current nesting inside f
  trace::Timestamp start = 0;   // enter time of the outermost invocation
  trace::ReplayVisitor v;
  v.onEnter = [&](trace::FunctionId fn, trace::Timestamp t, std::size_t) {
    if (fn == f) {
      if (nesting == 0) {
        start = t;
      }
      ++nesting;
    }
  };
  v.onLeave = [&](const trace::Frame& frame) {
    if (frame.function == f) {
      PERFVAR_ASSERT(nesting > 0, "segment nesting underflow");
      --nesting;
      if (nesting == 0) {
        Segment s;
        s.process = p;
        s.index = static_cast<std::uint32_t>(result.size());
        s.enter = start;
        s.leave = frame.leaveTime;
        result.push_back(s);
      }
    }
  };
  const trace::RankPin pin = tr.rank(p);
  trace::replayEvents(pin.events(), v);
  return result;
}

}  // namespace detail

std::vector<std::vector<Segment>> extractSegments(const trace::TraceView& tr,
                                                  trace::FunctionId f) {
  PERFVAR_REQUIRE(f < tr.functions().size(),
                  "segmentation function is not defined in this trace");
  std::vector<std::vector<Segment>> result(tr.processCount());
  for (trace::ProcessId p = 0; p < tr.processCount(); ++p) {
    result[p] = detail::extractSegmentsProcess(tr, p, f);
  }
  return result;
}

SegmentationInfo describeSegmentation(
    const std::vector<std::vector<Segment>>& segments) {
  SegmentationInfo info;
  if (segments.empty()) {
    return info;
  }
  info.minPerProcess = segments.front().size();
  info.maxPerProcess = segments.front().size();
  for (const auto& per : segments) {
    info.totalSegments += per.size();
    info.minPerProcess = std::min(info.minPerProcess, per.size());
    info.maxPerProcess = std::max(info.maxPerProcess, per.size());
  }
  info.uniform = info.minPerProcess == info.maxPerProcess;
  return info;
}

}  // namespace perfvar::analysis
