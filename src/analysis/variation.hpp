#ifndef PERFVAR_ANALYSIS_VARIATION_HPP
#define PERFVAR_ANALYSIS_VARIATION_HPP

/// \file variation.hpp
/// Runtime-variation statistics and hotspot detection over SOS-times.
///
/// This layer turns the raw per-segment SOS-times into the guidance the
/// paper's visualization provides: which (process, iteration) cells are
/// exceptionally slow, which processes are persistently overloaded, and
/// whether the run drifts slower over time.
///
/// Outliers are scored with a robust z-score (median/MAD based) so that a
/// handful of extreme segments cannot mask themselves by inflating the
/// scale estimate.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "analysis/sos.hpp"
#include "util/stats.hpp"

namespace perfvar::analysis {

/// Across-process statistics of one iteration (segment index).
struct IterationStats {
  std::size_t iteration = 0;
  std::size_t processCount = 0;  ///< processes that have this iteration
  double minSos = 0.0;
  double maxSos = 0.0;
  double meanSos = 0.0;
  double stddevSos = 0.0;
  double meanDuration = 0.0;
  /// Load imbalance lambda = max/mean - 1 of the SOS-times.
  double imbalance = 0.0;
  trace::ProcessId slowestProcess = 0;
};

/// Whole-run statistics of one process.
struct ProcessStats {
  trace::ProcessId process = 0;
  std::size_t segments = 0;
  double totalSos = 0.0;
  double meanSos = 0.0;
  double maxSos = 0.0;
  /// Robust z-score of this process' total SOS against all processes.
  double totalZ = 0.0;
};

/// One performance hotspot: an exceptionally slow segment.
struct Hotspot {
  trace::ProcessId process = 0;
  std::size_t iteration = 0;
  double sosSeconds = 0.0;
  double durationSeconds = 0.0;
  /// Robust z against all segments of the run.
  double globalZ = 0.0;
  /// Robust z against the other processes of the same iteration.
  double iterationZ = 0.0;
};

/// Options of the variation analysis.
struct VariationOptions {
  /// Robust-z threshold above which a segment is reported as a hotspot.
  double outlierThreshold = 3.5;
  /// Robust-z threshold above which a process counts as a culprit.
  double processThreshold = 3.0;
  /// Maximum number of hotspots kept (ranked by global z).
  std::size_t maxHotspots = 100;
};

/// Complete variation-analysis result.
struct VariationReport {
  std::vector<IterationStats> iterations;
  std::vector<ProcessStats> processes;      ///< indexed by process id
  std::vector<trace::ProcessId> processesBySos;  ///< ranked, slowest first
  std::vector<trace::ProcessId> culpritProcesses;  ///< totalZ >= threshold
  std::vector<Hotspot> hotspots;            ///< ranked by globalZ, desc

  /// OLS trend of the mean segment *duration* per iteration
  /// (seconds per iteration); positive slope = run gets slower.
  stats::OlsFit durationTrend;
  /// OLS trend of the mean SOS-time per iteration.
  stats::OlsFit sosTrend;

  /// Robust location/scale of all SOS values (seconds).
  double sosMedian = 0.0;
  double sosMad = 0.0;
  stats::Summary sosSummary;

  /// Most suspicious process (first of processesBySos); the paper's
  /// "follow the red" answer.
  trace::ProcessId slowestProcess() const;
};

/// Run the variation analysis over an SOS result.
VariationReport analyzeVariation(const SosResult& sos,
                                 const VariationOptions& options = {});

namespace detail {

/// Index-space executor: run body(i) for every i in [0, n), in any order
/// and possibly concurrently. Calls of body must be independent; the
/// arithmetic performed for one index never depends on the executor, so
/// serial and pool-backed runners produce bit-identical reports.
using IndexRunner =
    std::function<void(std::size_t n, const std::function<void(std::size_t)>&)>;

/// The one variation-analysis implementation. analyzeVariation() passes a
/// serial runner; analyzeVariationParallel() (parallel.hpp) passes a
/// thread-pool runner. Per-iteration and per-process loops go through
/// `run`; cross-cutting reductions (global summary, rankings, trends) stay
/// on the calling thread.
///
/// `referenceKernels` selects the original O(n^2) per-element referenceZ
/// loops instead of the batched stats::leaveOneOutZ kernel. The two are
/// bit-identical (enforced by tests/throughput_test.cpp); the reference
/// path exists as differential oracle and as perfbench's pre-optimization
/// baseline.
VariationReport analyzeVariationImpl(const SosResult& sos,
                                     const VariationOptions& options,
                                     const IndexRunner& run,
                                     bool referenceKernels = false);

}  // namespace detail

/// Multi-line human-readable report.
std::string formatVariationReport(const SosResult& sos,
                                  const VariationReport& report,
                                  std::size_t maxRows = 10);

}  // namespace perfvar::analysis

#endif  // PERFVAR_ANALYSIS_VARIATION_HPP
