#ifndef PERFVAR_TRACE_FILTER_HPP
#define PERFVAR_TRACE_FILTER_HPP

/// \file filter.hpp
/// Trace reduction: time-window slicing and function filtering.
///
/// The paper's second case study uses a filtered measurement: "the analyst
/// used a second measurement run to only record slow iterations. For
/// normal iterations the analyst discarded the tracing data." sliceTime
/// reproduces that post-hoc: it cuts a trace to a window, synthesizing
/// enter/leave events at the window boundaries for frames that span them,
/// so the result is again a structurally valid trace.
///
/// filterFunctions drops selected functions (splicing their children into
/// the parent), the standard way to thin traces of high-frequency helper
/// functions before analysis.

#include <functional>
#include <vector>

#include "trace/trace.hpp"

namespace perfvar::trace {

/// Cut a trace to [start, end). Frames overlapping a boundary get
/// synthetic Enter/Leave events at the boundary timestamps; events outside
/// the window are dropped. Definitions are preserved unchanged. Messages
/// whose event falls outside the window are dropped (their partner event
/// may survive - message records are unilateral in the event model).
Trace sliceTime(const Trace& trace, Timestamp start, Timestamp end);

/// Remove every invocation of the functions for which `drop(id)` is true.
/// Children of a dropped frame are kept and attach to the dropped frame's
/// parent (standard filter semantics of Score-P). Metric and message
/// events are kept.
Trace filterFunctions(const Trace& trace,
                      const std::function<bool(FunctionId)>& drop);

/// Keep only the given processes (ids are renumbered densely in the given
/// order). Message events whose peer is not kept are dropped; surviving
/// peer ids are remapped to the new numbering.
Trace selectProcesses(const Trace& trace,
                      const std::vector<ProcessId>& processes);

/// Partition a trace into `chunks` consecutive time windows for streaming
/// (`append`) ingestion. Unlike sliceTime, events are assigned whole to
/// the window containing their timestamp — no synthetic boundary events
/// are created — so concatenating the chunks per process reproduces the
/// original event streams exactly, and feeding them through
/// analysis::StreamingSos in order visits events in the same global
/// (time, process) order as a one-shot replay. Every chunk carries the
/// full definitions and all process names (some chunks may hold no events
/// for some processes). Windows are equal spans of [startTime, endTime];
/// requires chunks >= 1.
std::vector<Trace> splitByTime(const Trace& trace, std::size_t chunks);

/// Drop every quarantined rank of a salvage-loaded trace (selectProcesses
/// semantics: dense renumbering in ascending process order, messages to
/// dropped peers removed) and clear the quarantine metadata. The result is
/// the clean analyzable subset. A trace without quarantined ranks is
/// returned as a plain copy. Throws perfvar::Error if every rank is
/// quarantined (nothing left to analyze).
Trace dropQuarantined(const Trace& trace);

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_FILTER_HPP
