#ifndef PERFVAR_TRACE_BINARY_IO_HPP
#define PERFVAR_TRACE_BINARY_IO_HPP

/// \file binary_io.hpp
/// Binary serialization of traces ("PVTF" format, the OTF2 stand-in).
///
/// Layout (all integers LEB128 varints unless noted):
///   magic "PVTF" | version u32 LE | payload | fnv1a-64 checksum (8 bytes LE)
/// The payload holds resolution, definitions, and per-process event streams
/// with delta-encoded timestamps. Doubles are stored as their IEEE-754 bit
/// pattern (8 bytes LE). The reader validates magic, version and checksum
/// and throws perfvar::Error on any corruption.

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace perfvar::trace {

inline constexpr std::uint32_t kBinaryFormatVersion = 1;

/// Serialize a trace to a stream.
void writeBinary(const Trace& trace, std::ostream& out);

/// Deserialize a trace from a stream; throws perfvar::Error on malformed
/// input (bad magic, unsupported version, truncation, checksum mismatch).
Trace readBinary(std::istream& in);

/// Convenience file wrappers.
void saveBinaryFile(const Trace& trace, const std::string& path);
Trace loadBinaryFile(const std::string& path);

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_BINARY_IO_HPP
