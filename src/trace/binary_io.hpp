#ifndef PERFVAR_TRACE_BINARY_IO_HPP
#define PERFVAR_TRACE_BINARY_IO_HPP

/// \file binary_io.hpp
/// Binary serialization of traces ("PVTF" format, the OTF2 stand-in).
///
/// Two on-disk layouts share the magic/version prologue (see
/// docs/FORMAT.md for the byte-level reference):
///
/// v1 (legacy, streaming):
///   magic "PVTF" | version u32 LE | payload | fnv1a-64 checksum (8 B LE)
/// The payload holds resolution, definitions, and per-process event
/// streams with delta-encoded timestamps, checksummed as one unit.
///
/// v2 (current, block-based):
///   magic "PVTF" | version u32 LE | header hash | fixed header |
///   block table | definitions block | one event block per process
/// Every process stream is an independently decodable block with
/// delta-encoded timestamps and varint fields; each block carries its own
/// FNV-1a checksum computed block-wise over the encoded buffer (no
/// per-byte stream virtual calls), so blocks can be decoded in parallel
/// straight out of a memory-mapped file.
///
/// writeBinary() defaults to v2; v1 files written by older versions keep
/// loading through the legacy path. In the default Strict recovery mode
/// readers validate magic, version and all checksums and throw
/// perfvar::Error on any corruption; a Trace round-trips bit-exactly
/// through either version. RecoveryMode::Salvage instead quarantines the
/// rank blocks that fail verification and returns every healthy rank (see
/// docs/FORMAT.md, "Recovery semantics").

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace perfvar::util {
class ThreadPool;
}

namespace perfvar::trace {

inline constexpr std::uint32_t kBinaryFormatV1 = 1;
inline constexpr std::uint32_t kBinaryFormatV2 = 2;

/// Default version written by writeBinary()/saveBinaryFile().
inline constexpr std::uint32_t kBinaryFormatVersion = kBinaryFormatV2;

/// Options of the binary writers.
struct BinaryWriteOptions {
  /// On-disk layout to emit: kBinaryFormatV1 or kBinaryFormatV2.
  std::uint32_t version = kBinaryFormatVersion;
  /// Worker threads for the per-rank v2 block encode: 1 (default) encodes
  /// inline, 0 = hardware concurrency. The bytes produced are identical
  /// for every thread count (blocks are encoded independently and
  /// assembled in process order). Ignored for v1.
  std::size_t threads = 1;
  /// Optional external pool; overrides `threads` when set.
  util::ThreadPool* pool = nullptr;
};

/// Recovery policy of the binary readers.
enum class RecoveryMode : std::uint8_t {
  /// Throw perfvar::Error on any fault (the historical contract).
  Strict,
  /// Quarantine rank blocks that fail checksum or decode, keep every
  /// healthy rank. Header-level corruption (prologue, v2 fixed header /
  /// block table / definitions) is unsalvageable and still throws.
  Salvage,
};

/// Load status of one rank (process stream) of a binary trace file, as
/// reported by a Salvage-mode load or by verifyBinaryFile().
struct RankLoadStatus {
  std::string process;               ///< process name (may be empty if lost)
  bool ok = true;                    ///< stream verified and fully decoded
  ErrorCode error = ErrorCode::None; ///< fault class when !ok
  std::uint64_t bytesTotal = 0;      ///< encoded stream bytes per the file
  std::uint64_t bytesSalvaged = 0;   ///< encoded bytes decoded successfully
  std::uint64_t eventsDeclared = 0;  ///< event count per the file
  std::uint64_t eventsSalvaged = 0;  ///< decoded events kept
  std::uint64_t eventsDropped = 0;   ///< declared events lost to the fault
};

/// Per-rank outcome of a binary load (BinaryReadOptions::report) or of
/// verifyBinaryFile().
struct LoadReport {
  std::uint32_t version = 0;  ///< on-disk format of the file
  RecoveryMode mode = RecoveryMode::Strict;
  std::vector<RankLoadStatus> ranks;  ///< one entry per process, in order

  std::size_t quarantinedCount() const;
  bool clean() const { return quarantinedCount() == 0; }
};

/// Human-readable per-rank status table (the `trace_tool info --verify`
/// and `trace_tool salvage` view).
std::string formatLoadReport(const LoadReport& report);

/// Options of the binary readers.
struct BinaryReadOptions {
  /// Worker threads for the per-rank v2 block decode: 1 (default) decodes
  /// inline, 0 = hardware concurrency. The resulting Trace is identical
  /// for every thread count (each task fills only its own process slot).
  /// Ignored for v1 files.
  std::size_t threads = 1;
  /// Optional external pool; overrides `threads` when set.
  util::ThreadPool* pool = nullptr;
  /// loadBinaryFile(): memory-map the file and decode zero-copy out of
  /// the mapping when the platform supports it; a buffered read of the
  /// whole file is the fallback (and the behavior when false).
  bool mapFile = true;
  /// Strict (default) throws on any fault; Salvage quarantines faulty
  /// rank blocks (Trace::quarantined) and keeps the healthy ranks.
  RecoveryMode recovery = RecoveryMode::Strict;
  /// When set, receives the per-rank load outcome (all-ok for a
  /// successful Strict load).
  LoadReport* report = nullptr;
};

/// Serialize a trace to a stream (v2 by default; options.version selects).
void writeBinary(const Trace& trace, std::ostream& out,
                 const BinaryWriteOptions& options = {});

/// Deserialize a trace from a stream (either version; sniffs the header);
/// throws perfvar::Error on malformed input (bad magic, unsupported
/// version, truncation, checksum mismatch).
Trace readBinary(std::istream& in, const BinaryReadOptions& options = {});

/// Deserialize a trace from an in-memory image (either version). This is
/// the zero-copy v2 path: event blocks are decoded directly from `data`.
Trace readBinaryBuffer(const void* data, std::size_t size,
                       const BinaryReadOptions& options = {});

/// Outcome of one appendBinaryBuffer() call.
struct AppendStats {
  std::size_t eventsAppended = 0;    ///< events added across all processes
  std::size_t processesTouched = 0;  ///< processes that received >= 1 event
};

/// Streaming ingestion: decode a self-contained v2 chunk image and append
/// its events to `trace`. This is the `append` path of the analysis
/// server — a producer keeps emitting whole v2 images (each covering the
/// next time window) and the accumulated trace stays analyzable after
/// every chunk.
///
/// The first append into a default-constructed (empty) trace adopts the
/// chunk wholesale. Every later chunk must be compatible: same
/// resolution, identical definitions (functions, metrics, process names,
/// byte-compared in encoded form), and per process its first event must
/// not precede the last event already accumulated, so each stream stays
/// time-sorted. Chunks always decode strictly (BinaryReadOptions::recovery
/// is ignored; a corrupt chunk throws and leaves `trace` untouched).
/// Throws Error(UnsupportedVersion) for v1 images — v1 has no
/// independently decodable blocks — and Error(MalformedEvent) for an
/// incompatible or out-of-order chunk.
AppendStats appendBinaryBuffer(Trace& trace, const void* data,
                               std::size_t size,
                               const BinaryReadOptions& options = {});

/// Convenience file wrappers. loadBinaryFile() memory-maps the file when
/// possible (BinaryReadOptions::mapFile) and falls back to one buffered
/// read.
void saveBinaryFile(const Trace& trace, const std::string& path,
                    const BinaryWriteOptions& options = {});
Trace loadBinaryFile(const std::string& path,
                     const BinaryReadOptions& options = {});

/// Per-process stream extent of a binary trace file (the `trace_tool
/// info` view). For v2 this comes straight from the block table; for v1
/// the extents are measured while parsing the single payload.
struct BinaryBlockInfo {
  std::string process;        ///< process name
  std::uint64_t events = 0;   ///< events in this process stream
  std::uint64_t bytes = 0;    ///< encoded size of the stream in the file
  std::uint64_t offset = 0;   ///< absolute file offset of the stream
};

/// Summary of a binary trace file without materializing its events
/// (cheap for v2: only the header, table and definitions are read; v1
/// requires a full parse of the payload).
struct BinaryFileInfo {
  std::uint32_t version = 0;
  std::uint64_t fileSize = 0;
  std::uint64_t resolution = 0;
  std::uint64_t eventCount = 0;
  std::vector<BinaryBlockInfo> blocks;  ///< one entry per process
};

/// Inspect a binary trace file; throws perfvar::Error on corruption.
BinaryFileInfo inspectBinaryFile(const std::string& path);

/// Inspect an in-memory binary trace image (either version).
BinaryFileInfo inspectBinaryBuffer(const void* data, std::size_t size);

/// Verify a binary trace file rank by rank: runs a Salvage-mode load and
/// returns the per-rank status table without keeping the trace. Throws
/// only on unsalvageable (header-level) corruption or I/O failure.
LoadReport verifyBinaryFile(const std::string& path,
                            const BinaryReadOptions& options = {});

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_BINARY_IO_HPP
