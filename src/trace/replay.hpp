#ifndef PERFVAR_TRACE_REPLAY_HPP
#define PERFVAR_TRACE_REPLAY_HPP

/// \file replay.hpp
/// Call-stack replay over a process event stream.
///
/// StackReplayer walks one process stream and reconstructs the call stack,
/// invoking visitor callbacks with full frame information (enter time,
/// depth, parent). Profile construction, segmentation and SOS analysis are
/// all implemented on top of this single pass.

#include <functional>
#include <vector>

#include "trace/trace.hpp"
#include "trace/view.hpp"
#include "util/error.hpp"

namespace perfvar::trace {

/// One completed function invocation as seen during replay.
struct Frame {
  FunctionId function = kInvalidFunction;
  FunctionId parent = kInvalidFunction;  ///< kInvalidFunction at top level
  Timestamp enterTime = 0;
  Timestamp leaveTime = 0;
  std::size_t depth = 0;          ///< 0 = top level
  Timestamp childrenTime = 0;     ///< sum of direct children inclusive times

  Timestamp inclusive() const { return leaveTime - enterTime; }
  Timestamp exclusive() const { return inclusive() - childrenTime; }
};

/// Visitor interface of the replayer. All callbacks are optional.
struct ReplayVisitor {
  /// Called at each Enter event (function, time, depth after push - 1).
  std::function<void(FunctionId, Timestamp, std::size_t)> onEnter;
  /// Called at each Leave event with the completed frame.
  std::function<void(const Frame&)> onLeave;
  /// Called for each message event (isSend, event).
  std::function<void(bool, const Event&)> onMessage;
  /// Called for each metric sample with the current stack depth.
  std::function<void(const Event&, std::size_t)> onMetric;
};

/// Replay one time-sorted event stream through a statically-typed visitor
/// (any object with onEnter/onLeave/onMessage/onMetric member functions,
/// typically defined inline so the callbacks inline into the walk — the
/// std::function indirection of ReplayVisitor costs ~2x on the SOS hot
/// loop). Same walk, same error contract as replayEvents below; the two
/// are kept behaviorally identical by the differential kernel tests.
template <typename Visitor>
void replayEventsWith(EventSpan events, Visitor&& visitor) {
  struct OpenFrame {
    FunctionId function;
    Timestamp enterTime;
    Timestamp childrenTime;
  };
  std::vector<OpenFrame> stack;
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::Enter: {
        visitor.onEnter(e.ref, e.time, stack.size());
        stack.push_back(OpenFrame{e.ref, e.time, 0});
        break;
      }
      case EventKind::Leave: {
        PERFVAR_REQUIRE(!stack.empty() && stack.back().function == e.ref,
                        "replay: unbalanced enter/leave");
        const OpenFrame open = stack.back();
        stack.pop_back();
        Frame frame;
        frame.function = open.function;
        frame.parent = stack.empty() ? kInvalidFunction : stack.back().function;
        frame.enterTime = open.enterTime;
        frame.leaveTime = e.time;
        frame.depth = stack.size();
        frame.childrenTime = open.childrenTime;
        if (!stack.empty()) {
          stack.back().childrenTime += frame.inclusive();
        }
        visitor.onLeave(frame);
        break;
      }
      case EventKind::MpiSend:
        visitor.onMessage(true, e);
        break;
      case EventKind::MpiRecv:
        visitor.onMessage(false, e);
        break;
      case EventKind::Metric:
        visitor.onMetric(e, stack.size());
        break;
    }
  }
  PERFVAR_REQUIRE(stack.empty(), "replay: unclosed frames at stream end");
}

/// Replay one time-sorted event stream. The stream must be structurally
/// valid (the lint structural rules — stack balance, monotonic clocks);
/// malformed streams throw.
void replayEvents(EventSpan events, const ReplayVisitor& visitor);

/// Replay one process stream (span overload above does the work).
void replayProcess(const ProcessTrace& process, const ReplayVisitor& visitor);

/// Replay every process of a view (in process order). Accepts a Trace via
/// the implicit TraceView conversion.
void replayTrace(const TraceView& trace,
                 const std::function<ReplayVisitor(ProcessId)>& makeVisitor);

/// Collect all completed frames of a stream in leave order.
std::vector<Frame> collectFrames(EventSpan events);
std::vector<Frame> collectFrames(const ProcessTrace& process);

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_REPLAY_HPP
