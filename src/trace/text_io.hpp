#ifndef PERFVAR_TRACE_TEXT_IO_HPP
#define PERFVAR_TRACE_TEXT_IO_HPP

/// \file text_io.hpp
/// Line-oriented human-readable trace format ("PVTX") and dumping helpers.
///
/// The text format round-trips losslessly with the in-memory model and is
/// meant for debugging, diffing and small golden files. The resolution
/// record is mandatory and must precede the first process record (a
/// missing resolution would silently change timestamp semantics):
///
///   PVTX 1
///   resolution 1000000000
///   function <id> "<name>" "<group>" <PARADIGM>
///   metric <id> "<name>" "<unit>" <MODE>
///   process <id> "<name>"
///   E <time> <functionId>
///   L <time> <functionId>
///   S <time> <peer> <tag> <bytes>
///   R <time> <peer> <tag> <bytes>
///   M <time> <metricId> <value>

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace perfvar::trace {

/// Write the PVTX representation of a trace.
void writeText(const Trace& trace, std::ostream& out);

/// Parse a PVTX stream; throws perfvar::Error with a line number on
/// malformed input.
Trace readText(std::istream& in);

/// Convenience string/file wrappers.
std::string toText(const Trace& trace);
Trace fromText(const std::string& text);
void saveTextFile(const Trace& trace, const std::string& path);
Trace loadTextFile(const std::string& path);

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_TEXT_IO_HPP
