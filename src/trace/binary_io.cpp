#include "trace/binary_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <streambuf>

#include "trace/binary_format.hpp"
#include "util/error.hpp"
#include "util/mmap_file.hpp"

namespace perfvar::trace {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Cap for size hints taken from (not yet checksum-verified) counts: a
/// corrupted count must fail on decode, never on a pathological reserve.
constexpr std::uint64_t kReserveCap = 1ULL << 20;

/// Buffered payload writer that maintains an FNV-1a checksum.
class PayloadWriter {
public:
  explicit PayloadWriter(std::ostream& out) : out_(out) {}

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ = (hash_ ^ p[i]) * kFnvPrime;
    }
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
  }

  void u8(std::uint8_t v) { bytes(&v, 1); }

  void varint(std::uint64_t v) {
    unsigned char buf[10];
    std::size_t n = 0;
    do {
      unsigned char b = static_cast<unsigned char>(v & 0x7F);
      v >>= 7;
      if (v != 0) {
        b |= 0x80;
      }
      buf[n++] = b;
    } while (v != 0);
    bytes(buf, n);
  }

  void f64(double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<unsigned char>((bits >> (8 * i)) & 0xFF);
    }
    bytes(buf, 8);
  }

  void string(const std::string& s) {
    varint(s.size());
    if (!s.empty()) {
      bytes(s.data(), s.size());
    }
  }

  std::uint64_t hash() const { return hash_; }

private:
  std::ostream& out_;
  std::uint64_t hash_ = kFnvOffset;
};

/// Payload reader mirroring PayloadWriter.
class PayloadReader {
public:
  explicit PayloadReader(std::istream& in) : in_(in) {}

  void bytes(void* data, std::size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    PERFVAR_REQUIRE(static_cast<std::size_t>(in_.gcount()) == n,
                    "binary trace truncated");
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ = (hash_ ^ p[i]) * kFnvPrime;
    }
  }

  std::uint8_t u8() {
    std::uint8_t v = 0;
    bytes(&v, 1);
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      PERFVAR_REQUIRE(shift < 64, "binary trace: varint too long");
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        break;
      }
      shift += 7;
    }
    return v;
  }

  double f64() {
    unsigned char buf[8];
    bytes(buf, 8);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    }
    return std::bit_cast<double>(bits);
  }

  std::string string() {
    const std::uint64_t n = varint();
    PERFVAR_REQUIRE(n < (1ULL << 24), "binary trace: oversized string");
    std::string s(static_cast<std::size_t>(n), '\0');
    if (n > 0) {
      bytes(s.data(), static_cast<std::size_t>(n));
    }
    return s;
  }

  std::uint64_t hash() const { return hash_; }

  /// Current position of the underlying stream (v1 block extents).
  std::uint64_t tell() const {
    const auto pos = in_.tellg();
    return pos < 0 ? 0 : static_cast<std::uint64_t>(pos);
  }

private:
  std::istream& in_;
  std::uint64_t hash_ = kFnvOffset;
};

void writeU32LE(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out.write(buf, 4);
}

std::uint32_t readU32LE(std::istream& in) {
  unsigned char buf[4];
  in.read(reinterpret_cast<char*>(buf), 4);
  PERFVAR_REQUIRE(in.gcount() == 4, "binary trace truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  }
  return v;
}

/// Zero-copy std::istream over an in-memory byte range (the v1-from-
/// mapped-file path).
class MemoryStreamBuf : public std::streambuf {
public:
  MemoryStreamBuf(const unsigned char* data, std::size_t size) {
    auto* p = const_cast<char*>(reinterpret_cast<const char*>(data));
    setg(p, p, p + size);
  }

protected:
  // tellg() support for the v1 block-extent tracking.
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override {
    if (!(which & std::ios_base::in)) {
      return pos_type(off_type(-1));
    }
    char* target = nullptr;
    switch (dir) {
      case std::ios_base::beg:
        target = eback() + off;
        break;
      case std::ios_base::cur:
        target = gptr() + off;
        break;
      case std::ios_base::end:
        target = egptr() + off;
        break;
      default:
        return pos_type(off_type(-1));
    }
    if (target < eback() || target > egptr()) {
      return pos_type(off_type(-1));
    }
    setg(eback(), target, egptr());
    return pos_type(target - eback());
  }

  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override {
    return seekoff(off_type(pos), std::ios_base::beg, which);
  }
};

/// Read a whole stream (from the current position) into a byte vector.
std::vector<unsigned char> slurp(std::istream& in) {
  std::vector<unsigned char> bytes;
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    bytes.insert(bytes.end(), buf, buf + in.gcount());
  }
  return bytes;
}

std::uint32_t readPrologue(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  PERFVAR_REQUIRE(
      in.gcount() == 4 &&
          std::memcmp(magic, detail::kBinaryMagic, 4) == 0,
      "binary trace: bad magic");
  return readU32LE(in);
}

}  // namespace

namespace detail {

void writeBinaryV1(const Trace& trace, std::ostream& out) {
  out.write(kBinaryMagic, 4);
  writeU32LE(out, kBinaryFormatV1);

  PayloadWriter w(out);
  w.varint(trace.resolution);

  w.varint(trace.functions.size());
  for (const FunctionDef& f : trace.functions.all()) {
    w.string(f.name);
    w.string(f.group);
    w.u8(static_cast<std::uint8_t>(f.paradigm));
  }

  w.varint(trace.metrics.size());
  for (const MetricDef& m : trace.metrics.all()) {
    w.string(m.name);
    w.string(m.unit);
    w.u8(static_cast<std::uint8_t>(m.mode));
  }

  w.varint(trace.processes.size());
  for (const ProcessTrace& p : trace.processes) {
    w.string(p.name);
    w.varint(p.events.size());
    Timestamp last = 0;
    for (const Event& e : p.events) {
      w.u8(static_cast<std::uint8_t>(e.kind));
      w.varint(e.time - last);
      last = e.time;
      switch (e.kind) {
        case EventKind::Enter:
        case EventKind::Leave:
          w.varint(e.ref);
          break;
        case EventKind::MpiSend:
        case EventKind::MpiRecv:
          w.varint(e.ref);
          w.varint(e.aux);
          w.varint(e.size);
          break;
        case EventKind::Metric:
          w.varint(e.ref);
          w.f64(e.value);
          break;
      }
    }
  }

  // Checksum trailer (not part of the checksummed payload).
  const std::uint64_t h = w.hash();
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((h >> (8 * i)) & 0xFF);
  }
  out.write(buf, 8);
  PERFVAR_REQUIRE(out.good(), "binary trace: write failed");
}

Trace readBinaryV1(std::istream& in, std::vector<BinaryBlockInfo>* blocks) {
  PayloadReader r(in);
  Trace trace;
  trace.resolution = r.varint();
  PERFVAR_REQUIRE(trace.resolution > 0, "binary trace: zero resolution");

  const std::uint64_t nFuncs = r.varint();
  PERFVAR_REQUIRE(nFuncs < (1ULL << 24), "binary trace: too many functions");
  for (std::uint64_t i = 0; i < nFuncs; ++i) {
    const std::string name = r.string();
    const std::string group = r.string();
    const auto paradigm = static_cast<Paradigm>(r.u8());
    PERFVAR_REQUIRE(paradigm <= Paradigm::Other,
                    "binary trace: invalid paradigm");
    trace.functions.intern(name, group, paradigm);
  }

  const std::uint64_t nMetrics = r.varint();
  PERFVAR_REQUIRE(nMetrics < (1ULL << 24), "binary trace: too many metrics");
  for (std::uint64_t i = 0; i < nMetrics; ++i) {
    const std::string name = r.string();
    const std::string unit = r.string();
    const auto mode = static_cast<MetricMode>(r.u8());
    PERFVAR_REQUIRE(mode <= MetricMode::Absolute,
                    "binary trace: invalid metric mode");
    trace.metrics.intern(name, unit, mode);
  }

  const std::uint64_t nProcs = r.varint();
  PERFVAR_REQUIRE(nProcs >= 1 && nProcs < (1ULL << 24),
                  "binary trace: invalid process count");
  trace.processes.resize(static_cast<std::size_t>(nProcs));
  for (auto& p : trace.processes) {
    const std::uint64_t blockStart = r.tell();
    p.name = r.string();
    const std::uint64_t nEvents = r.varint();
    // Reserve from the declared count, clamped: the count is only
    // trustworthy after the checksum check at the end of the payload.
    p.events.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(nEvents, kReserveCap)));
    Timestamp last = 0;
    for (std::uint64_t i = 0; i < nEvents; ++i) {
      Event e;
      const auto kind = static_cast<EventKind>(r.u8());
      PERFVAR_REQUIRE(kind <= EventKind::Metric,
                      "binary trace: invalid event kind");
      e.kind = kind;
      last += r.varint();
      e.time = last;
      switch (kind) {
        case EventKind::Enter:
        case EventKind::Leave:
          e.ref = static_cast<std::uint32_t>(r.varint());
          break;
        case EventKind::MpiSend:
        case EventKind::MpiRecv:
          e.ref = static_cast<std::uint32_t>(r.varint());
          e.aux = static_cast<std::uint32_t>(r.varint());
          e.size = r.varint();
          break;
        case EventKind::Metric:
          e.ref = static_cast<std::uint32_t>(r.varint());
          e.value = r.f64();
          break;
      }
      p.events.push_back(e);
    }
    if (blocks != nullptr) {
      blocks->push_back(BinaryBlockInfo{p.name, nEvents,
                                        r.tell() - blockStart});
    }
  }

  const std::uint64_t expected = r.hash();
  unsigned char buf[8];
  in.read(reinterpret_cast<char*>(buf), 8);
  PERFVAR_REQUIRE(in.gcount() == 8, "binary trace: missing checksum");
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  PERFVAR_REQUIRE(stored == expected, "binary trace: checksum mismatch");
  return trace;
}

}  // namespace detail

void writeBinary(const Trace& trace, std::ostream& out,
                 const BinaryWriteOptions& options) {
  switch (options.version) {
    case kBinaryFormatV1:
      detail::writeBinaryV1(trace, out);
      return;
    case kBinaryFormatV2:
      detail::writeBinaryV2(trace, out, options);
      return;
    default:
      throw Error("binary trace: unsupported write version " +
                  std::to_string(options.version));
  }
}

Trace readBinary(std::istream& in, const BinaryReadOptions& options) {
  const std::uint32_t version = readPrologue(in);
  if (version == kBinaryFormatV1) {
    return detail::readBinaryV1(in, nullptr);
  }
  PERFVAR_REQUIRE(version == kBinaryFormatV2,
                  "binary trace: unsupported version " +
                      std::to_string(version));
  // v2 is decoded from a contiguous image; reassemble prologue + body.
  std::vector<unsigned char> image;
  image.reserve(detail::kBinaryPrologueSize + (1 << 16));
  const unsigned char prologue[detail::kBinaryPrologueSize] = {
      'P', 'V', 'T', 'F',
      static_cast<unsigned char>(version & 0xFF),
      static_cast<unsigned char>((version >> 8) & 0xFF),
      static_cast<unsigned char>((version >> 16) & 0xFF),
      static_cast<unsigned char>((version >> 24) & 0xFF)};
  image.insert(image.end(), prologue, prologue + sizeof prologue);
  const std::vector<unsigned char> body = slurp(in);
  image.insert(image.end(), body.begin(), body.end());
  return detail::readBinaryV2(image.data(), image.size(), options, nullptr);
}

Trace readBinaryBuffer(const void* data, std::size_t size,
                       const BinaryReadOptions& options) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  PERFVAR_REQUIRE(
      size >= detail::kBinaryPrologueSize &&
          std::memcmp(bytes, detail::kBinaryMagic, 4) == 0,
      "binary trace: bad magic");
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(bytes[4 + i]) << (8 * i);
  }
  if (version == kBinaryFormatV1) {
    MemoryStreamBuf buf(bytes + detail::kBinaryPrologueSize,
                        size - detail::kBinaryPrologueSize);
    std::istream in(&buf);
    return detail::readBinaryV1(in, nullptr);
  }
  PERFVAR_REQUIRE(version == kBinaryFormatV2,
                  "binary trace: unsupported version " +
                      std::to_string(version));
  return detail::readBinaryV2(bytes, size, options, nullptr);
}

void saveBinaryFile(const Trace& trace, const std::string& path,
                    const BinaryWriteOptions& options) {
  std::ofstream out(path, std::ios::binary);
  PERFVAR_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  writeBinary(trace, out, options);
  out.close();
  PERFVAR_REQUIRE(out.good(), "write to '" + path + "' failed");
}

Trace loadBinaryFile(const std::string& path,
                     const BinaryReadOptions& options) {
  const util::FileView file = util::FileView::open(path, options.mapFile);
  return readBinaryBuffer(file.data(), file.size(), options);
}

BinaryFileInfo inspectBinaryFile(const std::string& path) {
  const util::FileView file = util::FileView::open(path);
  PERFVAR_REQUIRE(
      file.size() >= detail::kBinaryPrologueSize &&
          std::memcmp(file.data(), detail::kBinaryMagic, 4) == 0,
      "binary trace: bad magic");
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(file.data()[4 + i]) << (8 * i);
  }
  if (version == kBinaryFormatV2) {
    BinaryFileInfo info = detail::inspectBinaryV2(file.data(), file.size());
    info.fileSize = file.size();
    return info;
  }
  PERFVAR_REQUIRE(version == kBinaryFormatV1,
                  "binary trace: unsupported version " +
                      std::to_string(version));
  BinaryFileInfo info;
  info.version = kBinaryFormatV1;
  info.fileSize = file.size();
  MemoryStreamBuf buf(file.data() + detail::kBinaryPrologueSize,
                      file.size() - detail::kBinaryPrologueSize);
  std::istream in(&buf);
  const Trace trace = detail::readBinaryV1(in, &info.blocks);
  info.resolution = trace.resolution;
  info.eventCount = trace.eventCount();
  return info;
}

}  // namespace perfvar::trace
