#include "trace/binary_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace perfvar::trace {

namespace {

constexpr char kMagic[4] = {'P', 'V', 'T', 'F'};
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Buffered payload writer that maintains an FNV-1a checksum.
class PayloadWriter {
public:
  explicit PayloadWriter(std::ostream& out) : out_(out) {}

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ = (hash_ ^ p[i]) * kFnvPrime;
    }
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
  }

  void u8(std::uint8_t v) { bytes(&v, 1); }

  void varint(std::uint64_t v) {
    unsigned char buf[10];
    std::size_t n = 0;
    do {
      unsigned char b = static_cast<unsigned char>(v & 0x7F);
      v >>= 7;
      if (v != 0) {
        b |= 0x80;
      }
      buf[n++] = b;
    } while (v != 0);
    bytes(buf, n);
  }

  void f64(double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<unsigned char>((bits >> (8 * i)) & 0xFF);
    }
    bytes(buf, 8);
  }

  void string(const std::string& s) {
    varint(s.size());
    if (!s.empty()) {
      bytes(s.data(), s.size());
    }
  }

  std::uint64_t hash() const { return hash_; }

private:
  std::ostream& out_;
  std::uint64_t hash_ = kFnvOffset;
};

/// Payload reader mirroring PayloadWriter.
class PayloadReader {
public:
  explicit PayloadReader(std::istream& in) : in_(in) {}

  void bytes(void* data, std::size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    PERFVAR_REQUIRE(static_cast<std::size_t>(in_.gcount()) == n,
                    "binary trace truncated");
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ = (hash_ ^ p[i]) * kFnvPrime;
    }
  }

  std::uint8_t u8() {
    std::uint8_t v = 0;
    bytes(&v, 1);
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      PERFVAR_REQUIRE(shift < 64, "binary trace: varint too long");
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        break;
      }
      shift += 7;
    }
    return v;
  }

  double f64() {
    unsigned char buf[8];
    bytes(buf, 8);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    }
    return std::bit_cast<double>(bits);
  }

  std::string string() {
    const std::uint64_t n = varint();
    PERFVAR_REQUIRE(n < (1ULL << 24), "binary trace: oversized string");
    std::string s(static_cast<std::size_t>(n), '\0');
    if (n > 0) {
      bytes(s.data(), static_cast<std::size_t>(n));
    }
    return s;
  }

  std::uint64_t hash() const { return hash_; }

private:
  std::istream& in_;
  std::uint64_t hash_ = kFnvOffset;
};

void writeU32LE(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out.write(buf, 4);
}

std::uint32_t readU32LE(std::istream& in) {
  unsigned char buf[4];
  in.read(reinterpret_cast<char*>(buf), 4);
  PERFVAR_REQUIRE(in.gcount() == 4, "binary trace truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void writeBinary(const Trace& trace, std::ostream& out) {
  out.write(kMagic, 4);
  writeU32LE(out, kBinaryFormatVersion);

  PayloadWriter w(out);
  w.varint(trace.resolution);

  w.varint(trace.functions.size());
  for (const FunctionDef& f : trace.functions.all()) {
    w.string(f.name);
    w.string(f.group);
    w.u8(static_cast<std::uint8_t>(f.paradigm));
  }

  w.varint(trace.metrics.size());
  for (const MetricDef& m : trace.metrics.all()) {
    w.string(m.name);
    w.string(m.unit);
    w.u8(static_cast<std::uint8_t>(m.mode));
  }

  w.varint(trace.processes.size());
  for (const ProcessTrace& p : trace.processes) {
    w.string(p.name);
    w.varint(p.events.size());
    Timestamp last = 0;
    for (const Event& e : p.events) {
      w.u8(static_cast<std::uint8_t>(e.kind));
      w.varint(e.time - last);
      last = e.time;
      switch (e.kind) {
        case EventKind::Enter:
        case EventKind::Leave:
          w.varint(e.ref);
          break;
        case EventKind::MpiSend:
        case EventKind::MpiRecv:
          w.varint(e.ref);
          w.varint(e.aux);
          w.varint(e.size);
          break;
        case EventKind::Metric:
          w.varint(e.ref);
          w.f64(e.value);
          break;
      }
    }
  }

  // Checksum trailer (not part of the checksummed payload).
  const std::uint64_t h = w.hash();
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((h >> (8 * i)) & 0xFF);
  }
  out.write(buf, 8);
  PERFVAR_REQUIRE(out.good(), "binary trace: write failed");
}

Trace readBinary(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  PERFVAR_REQUIRE(in.gcount() == 4 && std::memcmp(magic, kMagic, 4) == 0,
                  "binary trace: bad magic");
  const std::uint32_t version = readU32LE(in);
  PERFVAR_REQUIRE(version == kBinaryFormatVersion,
                  "binary trace: unsupported version " +
                      std::to_string(version));

  PayloadReader r(in);
  Trace trace;
  trace.resolution = r.varint();
  PERFVAR_REQUIRE(trace.resolution > 0, "binary trace: zero resolution");

  const std::uint64_t nFuncs = r.varint();
  PERFVAR_REQUIRE(nFuncs < (1ULL << 24), "binary trace: too many functions");
  for (std::uint64_t i = 0; i < nFuncs; ++i) {
    const std::string name = r.string();
    const std::string group = r.string();
    const auto paradigm = static_cast<Paradigm>(r.u8());
    PERFVAR_REQUIRE(paradigm <= Paradigm::Other,
                    "binary trace: invalid paradigm");
    trace.functions.intern(name, group, paradigm);
  }

  const std::uint64_t nMetrics = r.varint();
  PERFVAR_REQUIRE(nMetrics < (1ULL << 24), "binary trace: too many metrics");
  for (std::uint64_t i = 0; i < nMetrics; ++i) {
    const std::string name = r.string();
    const std::string unit = r.string();
    const auto mode = static_cast<MetricMode>(r.u8());
    PERFVAR_REQUIRE(mode <= MetricMode::Absolute,
                    "binary trace: invalid metric mode");
    trace.metrics.intern(name, unit, mode);
  }

  const std::uint64_t nProcs = r.varint();
  PERFVAR_REQUIRE(nProcs >= 1 && nProcs < (1ULL << 24),
                  "binary trace: invalid process count");
  trace.processes.resize(static_cast<std::size_t>(nProcs));
  for (auto& p : trace.processes) {
    p.name = r.string();
    const std::uint64_t nEvents = r.varint();
    p.events.reserve(static_cast<std::size_t>(nEvents));
    Timestamp last = 0;
    for (std::uint64_t i = 0; i < nEvents; ++i) {
      Event e;
      const auto kind = static_cast<EventKind>(r.u8());
      PERFVAR_REQUIRE(kind <= EventKind::Metric,
                      "binary trace: invalid event kind");
      e.kind = kind;
      last += r.varint();
      e.time = last;
      switch (kind) {
        case EventKind::Enter:
        case EventKind::Leave:
          e.ref = static_cast<std::uint32_t>(r.varint());
          break;
        case EventKind::MpiSend:
        case EventKind::MpiRecv:
          e.ref = static_cast<std::uint32_t>(r.varint());
          e.aux = static_cast<std::uint32_t>(r.varint());
          e.size = r.varint();
          break;
        case EventKind::Metric:
          e.ref = static_cast<std::uint32_t>(r.varint());
          e.value = r.f64();
          break;
      }
      p.events.push_back(e);
    }
  }

  const std::uint64_t expected = r.hash();
  unsigned char buf[8];
  in.read(reinterpret_cast<char*>(buf), 8);
  PERFVAR_REQUIRE(in.gcount() == 8, "binary trace: missing checksum");
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  PERFVAR_REQUIRE(stored == expected, "binary trace: checksum mismatch");
  return trace;
}

void saveBinaryFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  PERFVAR_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  writeBinary(trace, out);
  out.close();
  PERFVAR_REQUIRE(out.good(), "write to '" + path + "' failed");
}

Trace loadBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PERFVAR_REQUIRE(in.good(), "cannot open '" + path + "' for reading");
  return readBinary(in);
}

}  // namespace perfvar::trace
