#include "trace/binary_io.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <streambuf>

#include "trace/binary_format.hpp"
#include "util/error.hpp"
#include "util/mmap_file.hpp"

namespace perfvar::trace {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Cap for size hints taken from (not yet checksum-verified) counts: a
/// corrupted count must fail on decode, never on a pathological reserve.
constexpr std::uint64_t kReserveCap = 1ULL << 20;

/// Buffered payload writer that maintains an FNV-1a checksum.
class PayloadWriter {
public:
  explicit PayloadWriter(std::ostream& out) : out_(out) {}

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ = (hash_ ^ p[i]) * kFnvPrime;
    }
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
  }

  void u8(std::uint8_t v) { bytes(&v, 1); }

  void varint(std::uint64_t v) {
    unsigned char buf[10];
    std::size_t n = 0;
    do {
      unsigned char b = static_cast<unsigned char>(v & 0x7F);
      v >>= 7;
      if (v != 0) {
        b |= 0x80;
      }
      buf[n++] = b;
    } while (v != 0);
    bytes(buf, n);
  }

  void f64(double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<unsigned char>((bits >> (8 * i)) & 0xFF);
    }
    bytes(buf, 8);
  }

  void string(const std::string& s) {
    varint(s.size());
    if (!s.empty()) {
      bytes(s.data(), s.size());
    }
  }

  std::uint64_t hash() const { return hash_; }

private:
  std::ostream& out_;
  std::uint64_t hash_ = kFnvOffset;
};

/// Payload reader mirroring PayloadWriter.
class PayloadReader {
public:
  explicit PayloadReader(std::istream& in) : in_(in) {}

  void bytes(void* data, std::size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    PERFVAR_REQUIRE_E(static_cast<std::size_t>(in_.gcount()) == n,
                      "binary trace truncated",
                      ErrorContext::at(ErrorCode::TruncatedInput));
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ = (hash_ ^ p[i]) * kFnvPrime;
    }
  }

  std::uint8_t u8() {
    std::uint8_t v = 0;
    bytes(&v, 1);
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      PERFVAR_REQUIRE_E(shift < 64, "binary trace: varint too long",
                        ErrorContext::at(ErrorCode::MalformedEvent));
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        break;
      }
      shift += 7;
    }
    return v;
  }

  double f64() {
    unsigned char buf[8];
    bytes(buf, 8);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    }
    return std::bit_cast<double>(bits);
  }

  std::string string() {
    const std::uint64_t n = varint();
    PERFVAR_REQUIRE_E(n < (1ULL << 24), "binary trace: oversized string",
                      ErrorContext::at(ErrorCode::MalformedEvent));
    std::string s(static_cast<std::size_t>(n), '\0');
    if (n > 0) {
      bytes(s.data(), static_cast<std::size_t>(n));
    }
    return s;
  }

  std::uint64_t hash() const { return hash_; }

  /// Current position of the underlying stream (v1 block extents).
  std::uint64_t tell() const {
    const auto pos = in_.tellg();
    return pos < 0 ? 0 : static_cast<std::uint64_t>(pos);
  }

private:
  std::istream& in_;
  std::uint64_t hash_ = kFnvOffset;
};

void writeU32LE(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out.write(buf, 4);
}

std::uint32_t readU32LE(std::istream& in) {
  unsigned char buf[4];
  in.read(reinterpret_cast<char*>(buf), 4);
  PERFVAR_REQUIRE_E(in.gcount() == 4, "binary trace truncated",
                    ErrorContext::at(ErrorCode::TruncatedInput));
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  }
  return v;
}

/// Zero-copy std::istream over an in-memory byte range (the v1-from-
/// mapped-file path).
class MemoryStreamBuf : public std::streambuf {
public:
  MemoryStreamBuf(const unsigned char* data, std::size_t size) {
    auto* p = const_cast<char*>(reinterpret_cast<const char*>(data));
    setg(p, p, p + size);
  }

protected:
  // tellg() support for the v1 block-extent tracking.
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override {
    if (!(which & std::ios_base::in)) {
      return pos_type(off_type(-1));
    }
    char* target = nullptr;
    switch (dir) {
      case std::ios_base::beg:
        target = eback() + off;
        break;
      case std::ios_base::cur:
        target = gptr() + off;
        break;
      case std::ios_base::end:
        target = egptr() + off;
        break;
      default:
        return pos_type(off_type(-1));
    }
    if (target < eback() || target > egptr()) {
      return pos_type(off_type(-1));
    }
    setg(eback(), target, egptr());
    return pos_type(target - eback());
  }

  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override {
    return seekoff(off_type(pos), std::ios_base::beg, which);
  }
};

/// Read a whole stream (from the current position) into a byte vector.
std::vector<unsigned char> slurp(std::istream& in) {
  std::vector<unsigned char> bytes;
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    bytes.insert(bytes.end(), buf, buf + in.gcount());
  }
  return bytes;
}

std::uint32_t readPrologue(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  PERFVAR_REQUIRE_E(
      in.gcount() == 4 &&
          std::memcmp(magic, detail::kBinaryMagic, 4) == 0,
      "binary trace: bad magic", ErrorContext::at(ErrorCode::BadMagic, 0));
  return readU32LE(in);
}

/// Validate the prologue of an in-memory image and return the version.
/// A prefix of a valid prologue classifies as truncation, not bad magic.
std::uint32_t sniffPrologue(const unsigned char* bytes, std::size_t size) {
  PERFVAR_REQUIRE_E(
      size > 0 && std::memcmp(bytes, detail::kBinaryMagic,
                              std::min<std::size_t>(size, 4)) == 0,
      "binary trace: bad magic", ErrorContext::at(ErrorCode::BadMagic, 0));
  PERFVAR_REQUIRE_E(size >= detail::kBinaryPrologueSize,
                    "binary trace: truncated prologue",
                    ErrorContext::at(ErrorCode::TruncatedInput, size));
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(bytes[4 + i]) << (8 * i);
  }
  PERFVAR_REQUIRE_E(version == kBinaryFormatV1 || version == kBinaryFormatV2,
                    "binary trace: unsupported version " +
                        std::to_string(version),
                    ErrorContext::at(ErrorCode::UnsupportedVersion, 4));
  return version;
}

ErrorContext ioError(const std::string& path) {
  ErrorContext c;
  c.code = ErrorCode::IoFailure;
  c.path = path;
  return c;
}

/// Decode the v1 payload prefix shared by the strict and salvage readers:
/// resolution plus function/metric definitions. Returns the declared
/// process count.
std::uint64_t readV1Defs(PayloadReader& r, Trace& trace) {
  trace.resolution = r.varint();
  PERFVAR_REQUIRE_E(trace.resolution > 0, "binary trace: zero resolution",
                    ErrorContext::at(ErrorCode::MalformedEvent));

  const std::uint64_t nFuncs = r.varint();
  PERFVAR_REQUIRE_E(nFuncs < (1ULL << 24), "binary trace: too many functions",
                    ErrorContext::at(ErrorCode::MalformedEvent));
  for (std::uint64_t i = 0; i < nFuncs; ++i) {
    const std::string name = r.string();
    const std::string group = r.string();
    const auto paradigm = static_cast<Paradigm>(r.u8());
    PERFVAR_REQUIRE_E(paradigm <= Paradigm::Other,
                      "binary trace: invalid paradigm",
                      ErrorContext::at(ErrorCode::MalformedEvent));
    trace.functions.intern(name, group, paradigm);
  }

  const std::uint64_t nMetrics = r.varint();
  PERFVAR_REQUIRE_E(nMetrics < (1ULL << 24), "binary trace: too many metrics",
                    ErrorContext::at(ErrorCode::MalformedEvent));
  for (std::uint64_t i = 0; i < nMetrics; ++i) {
    const std::string name = r.string();
    const std::string unit = r.string();
    const auto mode = static_cast<MetricMode>(r.u8());
    PERFVAR_REQUIRE_E(mode <= MetricMode::Absolute,
                      "binary trace: invalid metric mode",
                      ErrorContext::at(ErrorCode::MalformedEvent));
    trace.metrics.intern(name, unit, mode);
  }

  const std::uint64_t nProcs = r.varint();
  PERFVAR_REQUIRE_E(nProcs >= 1 && nProcs < (1ULL << 24),
                    "binary trace: invalid process count",
                    ErrorContext::at(ErrorCode::MalformedEvent));
  return nProcs;
}

/// Decode one v1 event, accumulating the delta-encoded timestamp into
/// `last`. Throws on malformed or truncated content.
void readV1Event(PayloadReader& r, Timestamp& last, Event& e) {
  const auto kind = static_cast<EventKind>(r.u8());
  PERFVAR_REQUIRE_E(kind <= EventKind::Metric,
                    "binary trace: invalid event kind",
                    ErrorContext::at(ErrorCode::MalformedEvent));
  e.kind = kind;
  last += r.varint();
  e.time = last;
  switch (kind) {
    case EventKind::Enter:
    case EventKind::Leave:
      e.ref = static_cast<std::uint32_t>(r.varint());
      break;
    case EventKind::MpiSend:
    case EventKind::MpiRecv:
      e.ref = static_cast<std::uint32_t>(r.varint());
      e.aux = static_cast<std::uint32_t>(r.varint());
      e.size = r.varint();
      break;
    case EventKind::Metric:
      e.ref = static_cast<std::uint32_t>(r.varint());
      e.value = r.f64();
      break;
  }
}

/// All-ok per-rank status table of a successful Strict decode.
void fillStrictReport(LoadReport& report,
                      const std::vector<BinaryBlockInfo>& blocks) {
  for (const BinaryBlockInfo& b : blocks) {
    RankLoadStatus st;
    st.process = b.process;
    st.bytesTotal = b.bytes;
    st.bytesSalvaged = b.bytes;
    st.eventsDeclared = b.events;
    st.eventsSalvaged = b.events;
    report.ranks.push_back(std::move(st));
  }
}

}  // namespace

namespace detail {

void writeBinaryV1(const Trace& trace, std::ostream& out) {
  out.write(kBinaryMagic, 4);
  writeU32LE(out, kBinaryFormatV1);

  PayloadWriter w(out);
  w.varint(trace.resolution);

  w.varint(trace.functions.size());
  for (const FunctionDef& f : trace.functions.all()) {
    w.string(f.name);
    w.string(f.group);
    w.u8(static_cast<std::uint8_t>(f.paradigm));
  }

  w.varint(trace.metrics.size());
  for (const MetricDef& m : trace.metrics.all()) {
    w.string(m.name);
    w.string(m.unit);
    w.u8(static_cast<std::uint8_t>(m.mode));
  }

  w.varint(trace.processes.size());
  for (const ProcessTrace& p : trace.processes) {
    w.string(p.name);
    w.varint(p.events.size());
    Timestamp last = 0;
    for (const Event& e : p.events) {
      w.u8(static_cast<std::uint8_t>(e.kind));
      w.varint(e.time - last);
      last = e.time;
      switch (e.kind) {
        case EventKind::Enter:
        case EventKind::Leave:
          w.varint(e.ref);
          break;
        case EventKind::MpiSend:
        case EventKind::MpiRecv:
          w.varint(e.ref);
          w.varint(e.aux);
          w.varint(e.size);
          break;
        case EventKind::Metric:
          w.varint(e.ref);
          w.f64(e.value);
          break;
      }
    }
  }

  // Checksum trailer (not part of the checksummed payload).
  const std::uint64_t h = w.hash();
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((h >> (8 * i)) & 0xFF);
  }
  out.write(buf, 8);
  PERFVAR_REQUIRE(out.good(), "binary trace: write failed");
}

Trace readBinaryV1(std::istream& in, std::vector<BinaryBlockInfo>* blocks) {
  PayloadReader r(in);
  Trace trace;
  const std::uint64_t nProcs = readV1Defs(r, trace);
  trace.processes.resize(static_cast<std::size_t>(nProcs));
  for (auto& p : trace.processes) {
    const std::uint64_t blockStart = r.tell();
    p.name = r.string();
    const std::uint64_t nEvents = r.varint();
    // Reserve from the declared count, clamped: the count is only
    // trustworthy after the checksum check at the end of the payload.
    p.events.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(nEvents, kReserveCap)));
    Timestamp last = 0;
    for (std::uint64_t i = 0; i < nEvents; ++i) {
      Event e;
      readV1Event(r, last, e);
      p.events.push_back(e);
    }
    if (blocks != nullptr) {
      // `offset` is relative to the stream start (callers seeing the whole
      // file add the prologue size).
      blocks->push_back(BinaryBlockInfo{p.name, nEvents,
                                        r.tell() - blockStart, blockStart});
    }
  }

  const std::uint64_t expected = r.hash();
  unsigned char buf[8];
  in.read(reinterpret_cast<char*>(buf), 8);
  PERFVAR_REQUIRE_E(in.gcount() == 8, "binary trace: missing checksum",
                    ErrorContext::at(ErrorCode::TruncatedInput));
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  PERFVAR_REQUIRE_E(stored == expected, "binary trace: checksum mismatch",
                    ErrorContext::at(ErrorCode::ChecksumMismatch));
  return trace;
}

}  // namespace detail

namespace {

/// Salvage-mode v1 reader over the payload (`body` excludes the
/// prologue). v1 has a single checksum domain covering the definitions
/// and every stream, so fault localization is limited: a clean strict
/// pass keeps everything; a payload that simply ends early keeps the
/// fully decoded prefix ranks; any in-range corruption (including a
/// trailer checksum mismatch) quarantines every rank, since the fault
/// cannot be pinned to one stream. Definitions that fail to parse leave
/// nothing to salvage and rethrow.
Trace readBinaryV1Salvage(const unsigned char* body, std::size_t bodySize,
                          LoadReport& report) {
  report.version = kBinaryFormatV1;
  report.mode = RecoveryMode::Salvage;
  report.ranks.clear();

  // Strict-first: an intact payload must load byte-for-byte like Strict.
  try {
    MemoryStreamBuf buf(body, bodySize);
    std::istream in(&buf);
    std::vector<BinaryBlockInfo> blocks;
    Trace trace = detail::readBinaryV1(in, &blocks);
    fillStrictReport(report, blocks);
    return trace;
  } catch (const Error&) {
    report.ranks.clear();
  }

  MemoryStreamBuf buf(body, bodySize);
  std::istream in(&buf);
  PayloadReader r(in);
  Trace trace;
  const std::uint64_t nProcs64 = readV1Defs(r, trace);
  const auto nProcs = static_cast<std::size_t>(nProcs64);
  trace.processes.resize(nProcs);
  report.ranks.assign(nProcs, RankLoadStatus{});

  ErrorCode failCode = ErrorCode::None;
  std::size_t failedRank = nProcs;
  bool eofTruncation = false;
  for (std::size_t p = 0; p < nProcs; ++p) {
    RankLoadStatus& st = report.ranks[p];
    ProcessTrace& proc = trace.processes[p];
    const std::uint64_t blockStart = r.tell();
    // tell() is unusable once the stream has failed; track the position
    // after the last fully decoded event instead.
    std::uint64_t lastGood = blockStart;
    try {
      proc.name = r.string();
      st.process = proc.name;
      const std::uint64_t nEvents = r.varint();
      st.eventsDeclared = nEvents;
      proc.events.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(nEvents, kReserveCap)));
      Timestamp last = 0;
      for (std::uint64_t i = 0; i < nEvents; ++i) {
        Event e;
        readV1Event(r, last, e);
        proc.events.push_back(e);
        lastGood = r.tell();
      }
      const std::uint64_t extent = r.tell() - blockStart;
      st.bytesTotal = extent;
      st.bytesSalvaged = extent;
      st.eventsSalvaged = nEvents;
    } catch (const Error& e) {
      failCode = e.code() == ErrorCode::Generic ? ErrorCode::MalformedEvent
                                                : e.code();
      // PayloadReader only reports TruncatedInput when the stream itself
      // ran out of bytes, so that code identifies a pure EOF cut.
      eofTruncation = failCode == ErrorCode::TruncatedInput;
      failedRank = p;
      st.bytesSalvaged = lastGood - blockStart;
      st.bytesTotal = st.bytesSalvaged;
      break;
    }
  }

  if (failedRank == nProcs) {
    // Every stream decoded, so the strict failure must be in the trailer.
    // A missing trailer after a full decode is truncation at the trailer
    // itself: the streams decoded completely and stay trusted.
    unsigned char buf8[8];
    in.read(reinterpret_cast<char*>(buf8), 8);
    if (in.gcount() == 8) {
      std::uint64_t stored = 0;
      for (int i = 0; i < 8; ++i) {
        stored |= static_cast<std::uint64_t>(buf8[i]) << (8 * i);
      }
      if (stored != r.hash()) {
        failCode = ErrorCode::ChecksumMismatch;
      }
    }
  }

  if (failedRank < nProcs && eofTruncation) {
    // The payload simply ends early: everything before the cut decoded
    // in full and stays trusted; the cut rank and the ranks after it are
    // quarantined.
    for (std::size_t p = failedRank; p < nProcs; ++p) {
      report.ranks[p].ok = false;
      report.ranks[p].error = ErrorCode::TruncatedInput;
    }
  } else if (failedRank < nProcs || failCode != ErrorCode::None) {
    // In-range corruption (or a trailer mismatch): v1's single checksum
    // domain cannot localize the fault, so no stream can be trusted.
    for (std::size_t p = 0; p < nProcs; ++p) {
      report.ranks[p].ok = false;
      report.ranks[p].error = failCode;
    }
  }

  for (std::size_t p = 0; p < nProcs; ++p) {
    RankLoadStatus& st = report.ranks[p];
    if (st.ok) {
      continue;
    }
    st.eventsSalvaged = detail::balanceSalvagedEvents(
        trace.processes[p].events, trace.functions.size(),
        trace.metrics.size(), nProcs, static_cast<ProcessId>(p));
    st.eventsDropped = st.eventsDeclared > st.eventsSalvaged
                           ? st.eventsDeclared - st.eventsSalvaged
                           : 0;
  }
  return trace;
}

}  // namespace

std::size_t LoadReport::quarantinedCount() const {
  return static_cast<std::size_t>(
      std::count_if(ranks.begin(), ranks.end(),
                    [](const RankLoadStatus& st) { return !st.ok; }));
}

std::string formatLoadReport(const LoadReport& report) {
  std::ostringstream out;
  const std::size_t total = report.ranks.size();
  const std::size_t ok = total - report.quarantinedCount();
  out << "load report: v" << report.version << ", "
      << (report.mode == RecoveryMode::Salvage ? "salvage" : "strict")
      << " mode, " << ok << "/" << total << " ranks ok\n";
  for (std::size_t i = 0; i < total; ++i) {
    const RankLoadStatus& st = report.ranks[i];
    out << "  rank " << i << " \"" << st.process << "\": ";
    if (st.ok) {
      out << "ok (" << st.eventsSalvaged << " events, " << st.bytesSalvaged
          << " bytes)\n";
    } else {
      out << "quarantined: " << errorCodeName(st.error) << " (salvaged "
          << st.eventsSalvaged << "/" << st.eventsDeclared << " events, "
          << st.bytesSalvaged;
      if (st.bytesTotal > 0) {
        out << "/" << st.bytesTotal;
      }
      out << " bytes)\n";
    }
  }
  return out.str();
}

void writeBinary(const Trace& trace, std::ostream& out,
                 const BinaryWriteOptions& options) {
  switch (options.version) {
    case kBinaryFormatV1:
      detail::writeBinaryV1(trace, out);
      return;
    case kBinaryFormatV2:
      detail::writeBinaryV2(trace, out, options);
      return;
    default:
      throw Error("binary trace: unsupported write version " +
                  std::to_string(options.version));
  }
}

Trace readBinary(std::istream& in, const BinaryReadOptions& options) {
  const std::uint32_t version = readPrologue(in);
  if (version == kBinaryFormatV1 &&
      options.recovery == RecoveryMode::Strict && options.report == nullptr) {
    // Streaming fast path: v1 decodes straight off the stream.
    return detail::readBinaryV1(in, nullptr);
  }
  PERFVAR_REQUIRE_E(version == kBinaryFormatV1 || version == kBinaryFormatV2,
                    "binary trace: unsupported version " +
                        std::to_string(version),
                    ErrorContext::at(ErrorCode::UnsupportedVersion, 4));
  // Everything else works on a contiguous image; reassemble prologue +
  // body (v2 block-table offsets are absolute).
  std::vector<unsigned char> image;
  image.reserve(detail::kBinaryPrologueSize + (1 << 16));
  const unsigned char prologue[detail::kBinaryPrologueSize] = {
      'P', 'V', 'T', 'F',
      static_cast<unsigned char>(version & 0xFF),
      static_cast<unsigned char>((version >> 8) & 0xFF),
      static_cast<unsigned char>((version >> 16) & 0xFF),
      static_cast<unsigned char>((version >> 24) & 0xFF)};
  image.insert(image.end(), prologue, prologue + sizeof prologue);
  const std::vector<unsigned char> body = slurp(in);
  image.insert(image.end(), body.begin(), body.end());
  return readBinaryBuffer(image.data(), image.size(), options);
}

Trace readBinaryBuffer(const void* data, std::size_t size,
                       const BinaryReadOptions& options) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const std::uint32_t version = sniffPrologue(bytes, size);

  LoadReport local;
  LoadReport& report = options.report != nullptr ? *options.report : local;
  report = LoadReport{};
  report.version = version;
  report.mode = options.recovery;

  if (options.recovery == RecoveryMode::Salvage) {
    Trace trace;
    if (version == kBinaryFormatV1) {
      trace = readBinaryV1Salvage(bytes + detail::kBinaryPrologueSize,
                                  size - detail::kBinaryPrologueSize, report);
    } else {
      trace = detail::readBinaryV2Salvage(bytes, size, options, report);
    }
    for (std::size_t i = 0; i < report.ranks.size(); ++i) {
      const RankLoadStatus& st = report.ranks[i];
      if (!st.ok) {
        trace.quarantined.push_back(QuarantinedRank{
            static_cast<ProcessId>(i), st.process, st.error, st.bytesSalvaged,
            st.eventsSalvaged, st.eventsDropped});
      }
    }
    return trace;
  }

  if (version == kBinaryFormatV1) {
    MemoryStreamBuf buf(bytes + detail::kBinaryPrologueSize,
                        size - detail::kBinaryPrologueSize);
    std::istream in(&buf);
    if (options.report == nullptr) {
      return detail::readBinaryV1(in, nullptr);
    }
    std::vector<BinaryBlockInfo> blocks;
    Trace trace = detail::readBinaryV1(in, &blocks);
    fillStrictReport(report, blocks);
    return trace;
  }
  if (options.report == nullptr) {
    return detail::readBinaryV2(bytes, size, options, nullptr);
  }
  BinaryFileInfo info;
  Trace trace = detail::readBinaryV2(bytes, size, options, &info);
  fillStrictReport(report, info.blocks);
  return trace;
}

AppendStats appendBinaryBuffer(Trace& trace, const void* data,
                               std::size_t size,
                               const BinaryReadOptions& options) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const std::uint32_t version = sniffPrologue(bytes, size);
  PERFVAR_REQUIRE_E(version == kBinaryFormatV2,
                    "binary trace append: requires a v2 chunk (v" +
                        std::to_string(version) +
                        " has no independently decodable blocks)",
                    ErrorContext::at(ErrorCode::UnsupportedVersion, 4));
  return detail::appendBinaryV2(trace, bytes, size, options);
}

void saveBinaryFile(const Trace& trace, const std::string& path,
                    const BinaryWriteOptions& options) {
  std::ofstream out(path, std::ios::binary);
  PERFVAR_REQUIRE_E(out.good(), "cannot open '" + path + "' for writing",
                    ioError(path));
  writeBinary(trace, out, options);
  out.close();
  PERFVAR_REQUIRE_E(out.good(), "write to '" + path + "' failed",
                    ioError(path));
}

namespace {

/// Attach the file path to an Error thrown by the buffer-level readers
/// (they only see bytes) and rethrow, so callers always learn which file
/// failed. Errors that already carry a path pass through untouched.
[[noreturn]] void rethrowWithPath(const Error& e, const std::string& path) {
  if (!e.path().empty()) {
    throw e;
  }
  ErrorContext context = e.context();
  context.path = path;
  throw Error(e.what(), std::move(context));
}

}  // namespace

Trace loadBinaryFile(const std::string& path,
                     const BinaryReadOptions& options) {
  const util::FileView file = util::FileView::open(path, options.mapFile);
  try {
    return readBinaryBuffer(file.data(), file.size(), options);
  } catch (const Error& e) {
    rethrowWithPath(e, path);
  }
}

BinaryFileInfo inspectBinaryBuffer(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const std::uint32_t version = sniffPrologue(bytes, size);
  if (version == kBinaryFormatV2) {
    BinaryFileInfo info = detail::inspectBinaryV2(bytes, size);
    info.fileSize = size;
    return info;
  }
  BinaryFileInfo info;
  info.version = kBinaryFormatV1;
  info.fileSize = size;
  MemoryStreamBuf buf(bytes + detail::kBinaryPrologueSize,
                      size - detail::kBinaryPrologueSize);
  std::istream in(&buf);
  const Trace trace = detail::readBinaryV1(in, &info.blocks);
  // readBinaryV1 measures extents relative to the payload; report them as
  // absolute file offsets like the v2 block table does.
  for (BinaryBlockInfo& b : info.blocks) {
    b.offset += detail::kBinaryPrologueSize;
  }
  info.resolution = trace.resolution;
  info.eventCount = trace.eventCount();
  return info;
}

BinaryFileInfo inspectBinaryFile(const std::string& path) {
  const util::FileView file = util::FileView::open(path);
  try {
    return inspectBinaryBuffer(file.data(), file.size());
  } catch (const Error& e) {
    rethrowWithPath(e, path);
  }
}

LoadReport verifyBinaryFile(const std::string& path,
                            const BinaryReadOptions& options) {
  BinaryReadOptions o = options;
  LoadReport report;
  o.recovery = RecoveryMode::Salvage;
  o.report = &report;
  const util::FileView file = util::FileView::open(path, o.mapFile);
  try {
    readBinaryBuffer(file.data(), file.size(), o);
  } catch (const Error& e) {
    rethrowWithPath(e, path);
  }
  return report;
}

}  // namespace perfvar::trace
