#ifndef PERFVAR_TRACE_DEFINITIONS_HPP
#define PERFVAR_TRACE_DEFINITIONS_HPP

/// \file definitions.hpp
/// Global definition records of a trace: functions, metrics.
///
/// Definitions are interned: registering the same name twice returns the
/// original id. Ids are dense indices, so lookup tables over definitions
/// can be plain vectors.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/types.hpp"

namespace perfvar::trace {

/// Definition of one instrumented function (OTF2 region).
struct FunctionDef {
  std::string name;
  std::string group;  ///< free-form group label, e.g. "SPECS", "MPI"
  Paradigm paradigm = Paradigm::Compute;
};

/// Definition of one metric (hardware counter or derived value).
struct MetricDef {
  std::string name;
  std::string unit;
  MetricMode mode = MetricMode::Accumulated;
};

/// Interning registry for function definitions.
class FunctionRegistry {
public:
  /// Register (or look up) a function by name. If the name already exists
  /// the existing id is returned and group/paradigm must match.
  FunctionId intern(const std::string& name, const std::string& group = "",
                    Paradigm paradigm = Paradigm::Compute);

  /// Id for a name, if registered.
  std::optional<FunctionId> find(const std::string& name) const;

  const FunctionDef& at(FunctionId id) const;
  std::size_t size() const { return defs_.size(); }
  const std::vector<FunctionDef>& all() const { return defs_; }

  /// Convenience: name of a function id (throws on invalid id).
  const std::string& name(FunctionId id) const { return at(id).name; }

private:
  std::vector<FunctionDef> defs_;
  std::unordered_map<std::string, FunctionId> byName_;
};

/// Interning registry for metric definitions.
class MetricRegistry {
public:
  MetricId intern(const std::string& name, const std::string& unit = "",
                  MetricMode mode = MetricMode::Accumulated);

  std::optional<MetricId> find(const std::string& name) const;

  const MetricDef& at(MetricId id) const;
  std::size_t size() const { return defs_.size(); }
  const std::vector<MetricDef>& all() const { return defs_; }

  const std::string& name(MetricId id) const { return at(id).name; }

private:
  std::vector<MetricDef> defs_;
  std::unordered_map<std::string, MetricId> byName_;
};

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_DEFINITIONS_HPP
