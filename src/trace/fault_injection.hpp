#ifndef PERFVAR_TRACE_FAULT_INJECTION_HPP
#define PERFVAR_TRACE_FAULT_INJECTION_HPP

/// \file fault_injection.hpp
/// Deterministic corruption of PVTF images for robustness testing.
///
/// FaultInjector produces corrupted copies of a serialized trace image:
/// truncation, bit flips, torn (zeroed) tail writes, and v2 block-table
/// mutations. Table mutations re-seal the header hash so the fault stays
/// block-local — the header keeps verifying and Salvage-mode loads must
/// quarantine exactly the targeted rank. All randomness comes from the
/// seeded perfvar::Rng, so every corrupted image is reproducible from
/// (trace, version, seed).
///
/// This lives in perfvar::testing: it is a test harness shipped with the
/// library (like the simulator), not part of the I/O API.

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace perfvar::testing {

/// A whole-file PVTF image (prologue included).
using Image = std::vector<unsigned char>;

/// Serialize `trace` into an in-memory PVTF image of `version`
/// (trace::kBinaryFormatV1 or V2).
Image encodeImage(const trace::Trace& trace, std::uint32_t version);

/// Deterministic fault factory over PVTF images. The static mutations are
/// pure functions of their arguments; bitFlip() additionally draws from
/// the injector's seeded Rng. Every mutation returns a corrupted copy and
/// leaves the input untouched.
class FaultInjector {
public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Keep only the first `size` bytes (a partial write / lost tail).
  static Image truncateAt(const Image& image, std::size_t size);

  /// Zero the last `tailBytes` bytes without shrinking the file (a torn
  /// write: the space was allocated but the data never hit the disk).
  static Image tornTail(const Image& image, std::size_t tailBytes);

  /// v2 only: zero rank `rank`'s block-table entry and re-seal the header
  /// hash. The header verifies; the rank's block extent is structurally
  /// invalid (offset 0 points before the definitions block).
  static Image zeroTableEntry(const Image& image, std::size_t rank);

  /// v2 only: declare an absurd event count (image size + 1) for rank
  /// `rank` and re-seal the header hash. The block bytes and their
  /// checksum are untouched; only the declared count lies.
  static Image oversizeCount(const Image& image, std::size_t rank);

  /// Flip `flips` distinct random bits within byte range [lo, hi).
  /// Requires lo < hi <= image.size() and flips <= 8 * (hi - lo).
  Image bitFlip(const Image& image, std::size_t lo, std::size_t hi,
                std::size_t flips = 1);

  Rng& rng() { return rng_; }

private:
  Rng rng_;
};

}  // namespace perfvar::testing

#endif  // PERFVAR_TRACE_FAULT_INJECTION_HPP
