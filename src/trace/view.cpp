/// \file view.cpp
/// TraceView backends: eager (borrowed/owned/shared in-memory Trace),
/// out-of-core PVTF v2 (mmap + per-rank lazy decode into a bounded LRU of
/// decoded shards), and the filtered sub-view over a lazy parent.
///
/// Byte-identity between the eager and lazy paths holds by construction:
/// both run the same per-block codec (detail::decodeV2Block /
/// salvageV2Block, shared with binary_v2.cpp), so the decoded events — and
/// with them every downstream report — are bit-identical.

#include "trace/view.hpp"

#include <algorithm>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "trace/binary_format.hpp"
#include "trace/filter.hpp"
#include "util/error.hpp"
#include "util/mmap_file.hpp"

namespace perfvar::trace {

namespace detail {

namespace {

/// Shared ownership bundle of a pin: the backend (process names, mapped
/// file) plus, for decoded shards, the shard storage itself.
struct PinHold {
  std::shared_ptr<const TraceViewBackend> backend;
  std::shared_ptr<const std::vector<Event>> shard;  ///< null for eager spans
};

}  // namespace

/// Abstract storage backend of a TraceView. Thread-safe: rank() and the
/// metadata accessors may be called concurrently from pool workers.
class TraceViewBackend {
public:
  virtual ~TraceViewBackend() = default;

  virtual std::uint64_t resolution() const = 0;
  virtual const FunctionRegistry& functions() const = 0;
  virtual const MetricRegistry& metrics() const = 0;
  virtual std::size_t processCount() const = 0;
  virtual const std::string& processName(ProcessId p) const = 0;
  virtual std::uint64_t eventCount(ProcessId p) const = 0;
  virtual const std::vector<QuarantinedRank>& quarantined() const = 0;
  virtual RankPin rank(ProcessId p,
                       std::shared_ptr<const TraceViewBackend> self) const = 0;
  virtual const Trace* eagerOrNull() const { return nullptr; }
  virtual TraceViewStats stats() const { return {}; }

  /// Cached [startTime, endTime]; computed once per backend.
  std::pair<Timestamp, Timestamp> timeBounds(
      const std::shared_ptr<const TraceViewBackend>& self) const {
    std::lock_guard<std::mutex> lock(boundsMutex_);
    if (!boundsValid_) {
      const auto bounds = computeTimeBounds(self);
      start_ = bounds.first;
      end_ = bounds.second;
      boundsValid_ = true;
    }
    return {start_, end_};
  }

protected:
  static RankPin makePin(std::shared_ptr<const TraceViewBackend> backend,
                         std::shared_ptr<const std::vector<Event>> shard,
                         const std::string* name, EventSpan span) {
    auto hold = std::make_shared<PinHold>();
    hold->backend = std::move(backend);
    hold->shard = std::move(shard);
    return RankPin(std::move(hold), name, span);
  }

  /// One streaming pass over the ranks (bounded by the shard cache for
  /// the lazy backends). Overridden by the eager backend to reuse the
  /// Trace's own cached bounds.
  virtual std::pair<Timestamp, Timestamp> computeTimeBounds(
      const std::shared_ptr<const TraceViewBackend>& self) const {
    Timestamp start = 0;
    Timestamp end = 0;
    bool any = false;
    for (ProcessId p = 0; p < processCount(); ++p) {
      // The pin must outlive the span: a temporary pin would free the
      // decoded shard before front()/back() read it.
      const RankPin pin = rank(p, self);
      const EventSpan events = pin.events();
      if (events.empty()) {
        continue;
      }
      start = any ? std::min(start, events.front().time)
                  : events.front().time;
      end = std::max(end, events.back().time);
      any = true;
    }
    return {start, end};
  }

private:
  mutable std::mutex boundsMutex_;
  mutable bool boundsValid_ = false;
  mutable Timestamp start_ = 0;
  mutable Timestamp end_ = 0;
};

namespace {

// ---- eager backend --------------------------------------------------------

/// In-memory Trace, borrowed or (shared-)owned. rank() is a zero-copy
/// span over the Trace's vectors.
class EagerBackend final : public TraceViewBackend {
public:
  explicit EagerBackend(const Trace* borrowed) : trace_(borrowed) {}
  explicit EagerBackend(std::shared_ptr<const Trace> owned)
      : owned_(std::move(owned)), trace_(owned_.get()) {}

  std::uint64_t resolution() const override { return trace_->resolution; }
  const FunctionRegistry& functions() const override {
    return trace_->functions;
  }
  const MetricRegistry& metrics() const override { return trace_->metrics; }
  std::size_t processCount() const override { return trace_->processCount(); }
  const std::string& processName(ProcessId p) const override {
    return trace_->processes[p].name;
  }
  std::uint64_t eventCount(ProcessId p) const override {
    return trace_->processes[p].events.size();
  }
  const std::vector<QuarantinedRank>& quarantined() const override {
    return trace_->quarantined;
  }
  RankPin rank(ProcessId p,
               std::shared_ptr<const TraceViewBackend> self) const override {
    const ProcessTrace& proc = trace_->processes[p];
    return makePin(std::move(self), nullptr, &proc.name,
                   EventSpan(proc.events.data(), proc.events.size()));
  }
  const Trace* eagerOrNull() const override { return trace_; }

protected:
  std::pair<Timestamp, Timestamp> computeTimeBounds(
      const std::shared_ptr<const TraceViewBackend>&) const override {
    return {trace_->startTime(), trace_->endTime()};
  }

private:
  std::shared_ptr<const Trace> owned_;  ///< null when borrowed
  const Trace* trace_;
};

// ---- out-of-core v2 backend -----------------------------------------------

/// mmapped PVTF v2 file with per-rank lazy decode. Decoded shards live in
/// a mutex-protected LRU bounded by `budgetBytes`; outstanding pins keep
/// their shard alive past eviction (shared_ptr), so eviction only bounds
/// the cache, never invalidates spans. Salvaged (quarantined) ranks keep
/// their balanced prefix resident — they are rare and small by definition.
class LazyV2Backend final : public TraceViewBackend {
public:
  LazyV2Backend(util::FileView file, V2Summary summary,
                std::size_t budgetBytes)
      : file_(std::move(file)),
        summary_(std::move(summary)),
        budget_(budgetBytes) {
    salvaged_.resize(summary_.blocks.size());
  }

  /// Salvage classification pass (openFile, RecoveryMode::Salvage): run
  /// every block through the shared salvage codec, keep only the faulty
  /// ranks' balanced events resident, discard healthy decodes. One rank's
  /// decode is in flight at a time, so peak memory is one shard.
  void classifySalvage(LoadReport& report) {
    report.version = kBinaryFormatV2;
    report.mode = RecoveryMode::Salvage;
    report.ranks.assign(summary_.blocks.size(), RankLoadStatus{});
    for (std::size_t i = 0; i < summary_.blocks.size(); ++i) {
      RankLoadStatus& st = report.ranks[i];
      st.process = summary_.processNames[i];
      std::vector<Event> events;
      salvageV2Block(file_.data(), file_.size(), summary_.blocks[i],
                     static_cast<ProcessId>(i), summary_.functions.size(),
                     summary_.metrics.size(), summary_.blocks.size(), st,
                     events);
      if (!st.ok) {
        quarantined_.push_back(QuarantinedRank{
            static_cast<ProcessId>(i), st.process, st.error, st.bytesSalvaged,
            st.eventsSalvaged, st.eventsDropped});
        salvaged_[i] =
            std::make_shared<const std::vector<Event>>(std::move(events));
      }
    }
  }

  std::uint64_t resolution() const override { return summary_.resolution; }
  const FunctionRegistry& functions() const override {
    return summary_.functions;
  }
  const MetricRegistry& metrics() const override { return summary_.metrics; }
  std::size_t processCount() const override { return summary_.blocks.size(); }
  const std::string& processName(ProcessId p) const override {
    return summary_.processNames[p];
  }
  std::uint64_t eventCount(ProcessId p) const override {
    if (salvaged_[p] != nullptr) {
      return salvaged_[p]->size();  // balanced salvaged prefix
    }
    return summary_.blocks[p].events;  // from the block table, no decode
  }
  const std::vector<QuarantinedRank>& quarantined() const override {
    return quarantined_;
  }

  RankPin rank(ProcessId p,
               std::shared_ptr<const TraceViewBackend> self) const override {
    PERFVAR_REQUIRE(p < summary_.blocks.size(),
                    "TraceView::rank: process id out of range");
    if (salvaged_[p] != nullptr) {
      const auto& shard = salvaged_[p];
      return makePin(std::move(self), shard, &summary_.processNames[p],
                     EventSpan(shard->data(), shard->size()));
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (auto it = cache_.find(p); it != cache_.end()) {
      ++stats_.shardHits;
      touch(it->second);
      const auto shard = it->second.shard;
      lock.unlock();
      return makePin(std::move(self), shard, &summary_.processNames[p],
                     EventSpan(shard->data(), shard->size()));
    }
    lock.unlock();
    // Decode outside the lock so concurrent misses on different ranks
    // proceed in parallel. On a same-rank race the first insert wins and
    // the duplicate decode is dropped.
    auto decoded = std::make_shared<std::vector<Event>>();
    decodeV2Block(file_.data(), summary_.blocks[p],
                  static_cast<ProcessId>(p), *decoded);
    std::shared_ptr<const std::vector<Event>> shard = std::move(decoded);
    lock.lock();
    if (auto it = cache_.find(p); it != cache_.end()) {
      ++stats_.shardHits;
      touch(it->second);
      shard = it->second.shard;
    } else {
      ++stats_.shardDecodes;
      lru_.push_front(p);
      const std::size_t bytes = shard->size() * sizeof(Event);
      cache_.emplace(p, CacheEntry{shard, lru_.begin(), bytes});
      stats_.residentBytes += bytes;
      stats_.peakResidentBytes =
          std::max(stats_.peakResidentBytes, stats_.residentBytes);
      // Evict least-recently-used shards down to the budget; the shard
      // just inserted is never evicted (the cache may overshoot by one
      // shard so the requested rank always fits).
      while (stats_.residentBytes > budget_ && cache_.size() > 1) {
        const ProcessId victim = lru_.back();
        lru_.pop_back();
        const auto vit = cache_.find(victim);
        stats_.residentBytes -= vit->second.bytes;
        ++stats_.shardEvictions;
        cache_.erase(vit);
      }
    }
    lock.unlock();
    return makePin(std::move(self), shard, &summary_.processNames[p],
                   EventSpan(shard->data(), shard->size()));
  }

  TraceViewStats stats() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

private:
  struct CacheEntry {
    std::shared_ptr<const std::vector<Event>> shard;
    std::list<ProcessId>::iterator lru;  ///< position in lru_
    std::size_t bytes = 0;
  };

  void touch(CacheEntry& entry) const {
    lru_.splice(lru_.begin(), lru_, entry.lru);
  }

  util::FileView file_;
  V2Summary summary_;
  std::size_t budget_;
  std::vector<QuarantinedRank> quarantined_;
  /// Resident balanced events of quarantined ranks (null = healthy).
  std::vector<std::shared_ptr<const std::vector<Event>>> salvaged_;

  mutable std::mutex mutex_;
  mutable std::list<ProcessId> lru_;  ///< front = most recently used
  mutable std::unordered_map<ProcessId, CacheEntry> cache_;
  mutable TraceViewStats stats_;
};

// ---- filtered sub-view ----------------------------------------------------

/// selectProcesses() over a lazy parent: dense renumbering, messages to
/// dropped peers removed, surviving peer refs remapped — the exact
/// per-event semantics of trace::selectProcesses, applied at shard-decode
/// time. (Eager parents materialize instead; see TraceView::selectProcesses.)
class FilteredBackend final : public TraceViewBackend {
public:
  FilteredBackend(std::shared_ptr<const TraceViewBackend> parent,
                  std::vector<ProcessId> keep)
      : parent_(std::move(parent)), keep_(std::move(keep)) {
    names_.reserve(keep_.size());
    for (std::size_t i = 0; i < keep_.size(); ++i) {
      PERFVAR_REQUIRE(keep_[i] < parent_->processCount(),
                      "selectProcesses: invalid process id");
      PERFVAR_REQUIRE(
          remap_.emplace(keep_[i], static_cast<ProcessId>(i)).second,
          "selectProcesses: duplicate process id");
      names_.push_back(parent_->processName(keep_[i]));
    }
    filteredCounts_.assign(keep_.size(), kUnknownCount);
  }

  std::uint64_t resolution() const override { return parent_->resolution(); }
  const FunctionRegistry& functions() const override {
    return parent_->functions();
  }
  const MetricRegistry& metrics() const override {
    return parent_->metrics();
  }
  std::size_t processCount() const override { return keep_.size(); }
  const std::string& processName(ProcessId p) const override {
    return names_[p];
  }
  std::uint64_t eventCount(ProcessId p) const override {
    {
      std::lock_guard<std::mutex> lock(countsMutex_);
      if (filteredCounts_[p] != kUnknownCount) {
        return filteredCounts_[p];
      }
    }
    // Message-drop filtering changes the count; decode once to learn it.
    const std::uint64_t n = rankEvents(p)->size();
    std::lock_guard<std::mutex> lock(countsMutex_);
    filteredCounts_[p] = n;
    return n;
  }
  const std::vector<QuarantinedRank>& quarantined() const override {
    return noQuarantine_;  // the filter is how quarantined ranks are shed
  }

  RankPin rank(ProcessId p,
               std::shared_ptr<const TraceViewBackend> self) const override {
    auto shard = rankEvents(p);
    return makePin(std::move(self), shard, &names_[p],
                   EventSpan(shard->data(), shard->size()));
  }

  TraceViewStats stats() const override { return parent_->stats(); }

private:
  static constexpr std::uint64_t kUnknownCount = ~std::uint64_t{0};

  std::shared_ptr<const std::vector<Event>> rankEvents(ProcessId p) const {
    const RankPin parentPin = parent_->rank(keep_[p], parent_);
    const EventSpan in = parentPin.events();
    auto out = std::make_shared<std::vector<Event>>();
    out->reserve(in.size());
    for (const Event& e : in) {
      if (e.kind == EventKind::MpiSend || e.kind == EventKind::MpiRecv) {
        const auto it = remap_.find(e.ref);
        if (it == remap_.end()) {
          continue;  // peer removed
        }
        Event remapped = e;
        remapped.ref = it->second;
        out->push_back(remapped);
      } else {
        out->push_back(e);
      }
    }
    return out;
  }

  std::shared_ptr<const TraceViewBackend> parent_;
  std::vector<ProcessId> keep_;  ///< parent rank of each view rank
  std::unordered_map<ProcessId, ProcessId> remap_;  ///< parent id -> view id
  std::vector<std::string> names_;
  std::vector<QuarantinedRank> noQuarantine_;
  mutable std::mutex countsMutex_;
  mutable std::vector<std::uint64_t> filteredCounts_;
};

std::uint32_t sniffViewPrologue(const unsigned char* bytes,
                                std::size_t size) {
  PERFVAR_REQUIRE_E(
      size > 0 && std::memcmp(bytes, kBinaryMagic,
                              std::min<std::size_t>(size, 4)) == 0,
      "binary trace: bad magic", ErrorContext::at(ErrorCode::BadMagic, 0));
  PERFVAR_REQUIRE_E(size >= kBinaryPrologueSize,
                    "binary trace: truncated prologue",
                    ErrorContext::at(ErrorCode::TruncatedInput, size));
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(bytes[4 + i]) << (8 * i);
  }
  PERFVAR_REQUIRE_E(version == kBinaryFormatV1 || version == kBinaryFormatV2,
                    "binary trace: unsupported version " +
                        std::to_string(version),
                    ErrorContext::at(ErrorCode::UnsupportedVersion, 4));
  return version;
}

[[noreturn]] void rethrowViewError(const Error& e, const std::string& path) {
  if (!e.path().empty()) {
    throw e;
  }
  ErrorContext context = e.context();
  context.path = path;
  throw Error(e.what(), std::move(context));
}

}  // namespace

}  // namespace detail

// ---- TraceView ------------------------------------------------------------

TraceView::TraceView(const Trace& trace)
    : backend_(std::make_shared<detail::EagerBackend>(&trace)) {}

TraceView TraceView::shared(std::shared_ptr<const Trace> trace) {
  PERFVAR_REQUIRE(trace != nullptr, "TraceView::shared: null trace");
  return TraceView(std::make_shared<detail::EagerBackend>(std::move(trace)));
}

TraceView TraceView::owned(Trace&& trace) {
  return shared(std::make_shared<const Trace>(std::move(trace)));
}

TraceView TraceView::openFile(const std::string& path,
                              const TraceViewOptions& options) {
  util::FileView file = util::FileView::open(path, options.mapFile);
  try {
    const std::uint32_t version =
        detail::sniffViewPrologue(file.data(), file.size());
    if (version == kBinaryFormatV1) {
      // v1 has no per-rank block table to decode lazily; materialize
      // behind the same interface.
      BinaryReadOptions readOptions;
      readOptions.mapFile = options.mapFile;
      readOptions.recovery = options.recovery;
      readOptions.report = options.report;
      return owned(readBinaryBuffer(file.data(), file.size(), readOptions));
    }
    const bool salvage = options.recovery == RecoveryMode::Salvage;
    detail::V2Summary summary =
        detail::parseV2Summary(file.data(), file.size(),
                               /*lenientBlocks=*/salvage);
    auto backend = std::make_shared<detail::LazyV2Backend>(
        std::move(file), std::move(summary), options.shardBudgetBytes);
    if (salvage) {
      LoadReport local;
      LoadReport& report =
          options.report != nullptr ? *options.report : local;
      report = LoadReport{};
      backend->classifySalvage(report);
    } else if (options.report != nullptr) {
      // Strict opens defer block verification to first access; the report
      // reflects the (verified) header view of the file.
      LoadReport& report = *options.report;
      report = LoadReport{};
      report.version = kBinaryFormatV2;
      report.mode = RecoveryMode::Strict;
      report.ranks.assign(backend->processCount(), RankLoadStatus{});
      for (std::size_t i = 0; i < backend->processCount(); ++i) {
        report.ranks[i].process = backend->processName(
            static_cast<ProcessId>(i));
      }
    }
    return TraceView(std::move(backend));
  } catch (const Error& e) {
    detail::rethrowViewError(e, path);
  }
}

const detail::TraceViewBackend& TraceView::backend() const {
  PERFVAR_REQUIRE(backend_ != nullptr, "TraceView: invalid (empty) view");
  return *backend_;
}

std::uint64_t TraceView::resolution() const { return backend().resolution(); }

const FunctionRegistry& TraceView::functions() const {
  return backend().functions();
}

const MetricRegistry& TraceView::metrics() const {
  return backend().metrics();
}

std::size_t TraceView::processCount() const {
  return backend().processCount();
}

const std::string& TraceView::processName(ProcessId p) const {
  PERFVAR_REQUIRE(p < processCount(),
                  "TraceView::processName: process id out of range");
  return backend().processName(p);
}

std::uint64_t TraceView::eventCount(ProcessId p) const {
  PERFVAR_REQUIRE(p < processCount(),
                  "TraceView::eventCount: process id out of range");
  return backend().eventCount(p);
}

std::size_t TraceView::eventCount() const {
  std::size_t n = 0;
  for (ProcessId p = 0; p < processCount(); ++p) {
    n += static_cast<std::size_t>(backend().eventCount(p));
  }
  return n;
}

const std::vector<QuarantinedRank>& TraceView::quarantined() const {
  return backend().quarantined();
}

bool TraceView::isQuarantined(ProcessId p) const {
  for (const auto& q : quarantined()) {
    if (q.process == p) {
      return true;
    }
  }
  return false;
}

Timestamp TraceView::startTime() const {
  return backend().timeBounds(backend_).first;
}

Timestamp TraceView::endTime() const {
  return backend().timeBounds(backend_).second;
}

RankPin TraceView::rank(ProcessId p) const {
  PERFVAR_REQUIRE(p < processCount(),
                  "TraceView::rank: process id out of range");
  return backend().rank(p, backend_);
}

TraceView TraceView::selectProcesses(
    const std::vector<ProcessId>& processes) const {
  PERFVAR_REQUIRE(!processes.empty(), "selectProcesses: empty selection");
  if (const Trace* eager = eagerOrNull()) {
    // Eager parents materialize (one pass, exactly the historical
    // behavior and cost); only out-of-core parents filter lazily.
    return owned(trace::selectProcesses(*eager, processes));
  }
  backend();  // validity check
  return TraceView(
      std::make_shared<detail::FilteredBackend>(backend_, processes));
}

TraceView TraceView::dropQuarantined() const {
  if (quarantined().empty()) {
    return *this;
  }
  std::vector<ProcessId> keep;
  keep.reserve(processCount());
  for (ProcessId p = 0; p < processCount(); ++p) {
    if (!isQuarantined(p)) {
      keep.push_back(p);
    }
  }
  PERFVAR_REQUIRE(!keep.empty(),
                  "dropQuarantined: every rank is quarantined");
  return selectProcesses(keep);
}

const Trace* TraceView::eagerOrNull() const { return backend().eagerOrNull(); }

Trace TraceView::materialize() const {
  if (const Trace* eager = eagerOrNull()) {
    return *eager;
  }
  Trace out;
  out.resolution = resolution();
  out.functions = functions();
  out.metrics = metrics();
  out.processes.resize(processCount());
  for (ProcessId p = 0; p < processCount(); ++p) {
    out.processes[p].name = processName(p);
    const EventSpan events = rank(p).events();
    out.processes[p].events.assign(events.begin(), events.end());
  }
  out.quarantined = quarantined();
  return out;
}

TraceViewStats TraceView::stats() const { return backend().stats(); }

}  // namespace perfvar::trace
