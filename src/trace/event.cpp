#include "trace/event.hpp"

namespace perfvar::trace {

const char* eventKindName(EventKind k) {
  switch (k) {
    case EventKind::Enter:
      return "ENTER";
    case EventKind::Leave:
      return "LEAVE";
    case EventKind::MpiSend:
      return "MPI_SEND";
    case EventKind::MpiRecv:
      return "MPI_RECV";
    case EventKind::Metric:
      return "METRIC";
  }
  return "UNKNOWN";
}

}  // namespace perfvar::trace
