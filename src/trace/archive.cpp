#include "trace/archive.hpp"

#include <filesystem>
#include <fstream>
#include <memory>
#include <unordered_map>

#include "trace/binary_io.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace perfvar::trace {

namespace {

std::string anchorPath(const std::string& dir) {
  return dir + "/anchor.pva";
}

std::string definitionsPath(const std::string& dir) {
  return dir + "/definitions.pvt";
}

std::string rankPath(const std::string& dir, std::size_t rank) {
  return dir + "/rank" + std::to_string(rank) + ".pvt";
}

}  // namespace

void saveArchive(const Trace& tr, const std::string& directory,
                 const BinaryWriteOptions& options) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  PERFVAR_REQUIRE(!ec, "cannot create archive directory '" + directory + "'");

  // Anchor (human-readable, cheap to stat).
  {
    std::ofstream anchor(anchorPath(directory));
    PERFVAR_REQUIRE(anchor.good(), "cannot write archive anchor");
    anchor << "PVTA 1\n"
           << "ranks " << tr.processCount() << '\n'
           << "resolution " << tr.resolution << '\n';
    PERFVAR_REQUIRE(anchor.good(), "anchor write failed");
  }

  // Global definitions: a definitions-only PVTF (one empty placeholder
  // process; the PVTF format requires at least one).
  {
    Trace defs;
    defs.resolution = tr.resolution;
    defs.functions = tr.functions;
    defs.metrics = tr.metrics;
    defs.processes.resize(1);
    defs.processes[0].name = "(definitions)";
    saveBinaryFile(defs, definitionsPath(directory), options);
  }

  // One event file per rank: a single-process PVTF without definitions
  // (events reference the global definition ids).
  for (std::size_t r = 0; r < tr.processCount(); ++r) {
    Trace rankTrace;
    rankTrace.resolution = tr.resolution;
    rankTrace.processes.resize(1);
    rankTrace.processes[0] = tr.processes[r];
    saveBinaryFile(rankTrace, rankPath(directory, r), options);
  }
}

ArchiveInfo readArchiveInfo(const std::string& directory) {
  std::ifstream anchor(anchorPath(directory));
  PERFVAR_REQUIRE(anchor.good(),
                  "cannot open archive anchor in '" + directory + "'");
  std::string magic;
  std::uint32_t version = 0;
  anchor >> magic >> version;
  PERFVAR_REQUIRE(magic == "PVTA" && version == 1,
                  "'" + directory + "' is not a PVTA v1 archive");
  ArchiveInfo info;
  std::string key;
  while (anchor >> key) {
    if (key == "ranks") {
      anchor >> info.ranks;
    } else if (key == "resolution") {
      anchor >> info.resolution;
    } else {
      std::string ignored;
      anchor >> ignored;
    }
  }
  PERFVAR_REQUIRE(info.ranks >= 1 && info.resolution >= 1,
                  "archive anchor is incomplete");
  return info;
}

namespace {

Trace loadSelected(const std::string& directory,
                   const std::vector<ProcessId>& ranks, std::size_t total,
                   const ArchiveReadOptions& options) {
  Trace defs = loadBinaryFile(definitionsPath(directory));

  std::unordered_map<ProcessId, ProcessId> remap;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    PERFVAR_REQUIRE(ranks[i] < total, "archive rank out of range");
    PERFVAR_REQUIRE(remap.emplace(ranks[i],
                                  static_cast<ProcessId>(i)).second,
                    "duplicate rank in selection");
  }

  Trace out;
  out.resolution = defs.resolution;
  out.functions = std::move(defs.functions);
  out.metrics = std::move(defs.metrics);
  out.processes.resize(ranks.size());

  // Rank files are independent, so they load in parallel; each task
  // writes only its own process slot (the remap table is read-only), and
  // slot order follows the selection, so the result is identical for
  // every thread count.
  std::unique_ptr<util::ThreadPool> pool;
  if (options.threads != 1) {
    pool = std::make_unique<util::ThreadPool>(options.threads);
  }
  util::parallelChunks(
      pool.get(), ranks.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Trace rankTrace = loadBinaryFile(rankPath(directory, ranks[i]));
          PERFVAR_REQUIRE(rankTrace.processCount() == 1,
                          "archive rank file must hold exactly one process");
          PERFVAR_REQUIRE(rankTrace.resolution == out.resolution,
                          "archive rank file resolution mismatch");
          auto& dst = out.processes[i];
          dst.name = std::move(rankTrace.processes[0].name);
          dst.events.reserve(rankTrace.processes[0].events.size());
          for (Event& e : rankTrace.processes[0].events) {
            if (e.kind == EventKind::MpiSend || e.kind == EventKind::MpiRecv) {
              const auto it = remap.find(e.ref);
              if (it == remap.end()) {
                continue;  // peer not part of the selection
              }
              e.ref = it->second;
            }
            dst.events.push_back(e);
          }
        }
      });
  return out;
}

}  // namespace

Trace loadArchive(const std::string& directory,
                  const ArchiveReadOptions& options) {
  const ArchiveInfo info = readArchiveInfo(directory);
  std::vector<ProcessId> all(info.ranks);
  for (std::size_t i = 0; i < info.ranks; ++i) {
    all[i] = static_cast<ProcessId>(i);
  }
  return loadSelected(directory, all, info.ranks, options);
}

Trace loadArchiveRanks(const std::string& directory,
                       const std::vector<ProcessId>& ranks,
                       const ArchiveReadOptions& options) {
  PERFVAR_REQUIRE(!ranks.empty(), "empty rank selection");
  const ArchiveInfo info = readArchiveInfo(directory);
  return loadSelected(directory, ranks, info.ranks, options);
}

}  // namespace perfvar::trace
