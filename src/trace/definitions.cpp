#include "trace/definitions.hpp"

#include "util/error.hpp"

namespace perfvar::trace {

FunctionId FunctionRegistry::intern(const std::string& name,
                                    const std::string& group,
                                    Paradigm paradigm) {
  PERFVAR_REQUIRE(!name.empty(), "function name must not be empty");
  const auto it = byName_.find(name);
  if (it != byName_.end()) {
    const FunctionDef& existing = defs_[it->second];
    PERFVAR_REQUIRE(existing.paradigm == paradigm &&
                        (group.empty() || existing.group == group),
                    "function '" + name + "' re-registered with different "
                    "group/paradigm");
    return it->second;
  }
  const auto id = static_cast<FunctionId>(defs_.size());
  defs_.push_back(FunctionDef{name, group, paradigm});
  byName_.emplace(name, id);
  return id;
}

std::optional<FunctionId> FunctionRegistry::find(const std::string& name) const {
  const auto it = byName_.find(name);
  if (it == byName_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const FunctionDef& FunctionRegistry::at(FunctionId id) const {
  PERFVAR_REQUIRE(id < defs_.size(), "invalid function id");
  return defs_[id];
}

MetricId MetricRegistry::intern(const std::string& name,
                                const std::string& unit, MetricMode mode) {
  PERFVAR_REQUIRE(!name.empty(), "metric name must not be empty");
  const auto it = byName_.find(name);
  if (it != byName_.end()) {
    const MetricDef& existing = defs_[it->second];
    PERFVAR_REQUIRE(existing.mode == mode,
                    "metric '" + name + "' re-registered with different mode");
    return it->second;
  }
  const auto id = static_cast<MetricId>(defs_.size());
  defs_.push_back(MetricDef{name, unit, mode});
  byName_.emplace(name, id);
  return id;
}

std::optional<MetricId> MetricRegistry::find(const std::string& name) const {
  const auto it = byName_.find(name);
  if (it == byName_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const MetricDef& MetricRegistry::at(MetricId id) const {
  PERFVAR_REQUIRE(id < defs_.size(), "invalid metric id");
  return defs_[id];
}

}  // namespace perfvar::trace
