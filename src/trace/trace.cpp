#include "trace/trace.hpp"

#include <algorithm>

namespace perfvar::trace {

Trace::Trace(const Trace& other)
    : resolution(other.resolution),
      functions(other.functions),
      metrics(other.metrics),
      processes(other.processes),
      quarantined(other.quarantined) {}

Trace& Trace::operator=(const Trace& other) {
  if (this != &other) {
    resolution = other.resolution;
    functions = other.functions;
    metrics = other.metrics;
    processes = other.processes;
    quarantined = other.quarantined;
    invalidateTimeBounds();
  }
  return *this;
}

Trace::Trace(Trace&& other) noexcept
    : resolution(other.resolution),
      functions(std::move(other.functions)),
      metrics(std::move(other.metrics)),
      processes(std::move(other.processes)),
      quarantined(std::move(other.quarantined)) {}

Trace& Trace::operator=(Trace&& other) noexcept {
  if (this != &other) {
    resolution = other.resolution;
    functions = std::move(other.functions);
    metrics = std::move(other.metrics);
    processes = std::move(other.processes);
    quarantined = std::move(other.quarantined);
    invalidateTimeBounds();
  }
  return *this;
}

bool Trace::isQuarantined(ProcessId p) const {
  for (const auto& q : quarantined) {
    if (q.process == p) {
      return true;
    }
  }
  return false;
}

std::size_t Trace::eventCount() const {
  std::size_t n = 0;
  for (const auto& p : processes) {
    n += p.events.size();
  }
  return n;
}

void Trace::computeTimeBounds() const {
  Timestamp start = 0;
  Timestamp end = 0;
  bool any = false;
  for (const auto& p : processes) {
    if (!p.events.empty()) {
      start = any ? std::min(start, p.events.front().time)
                  : p.events.front().time;
      end = std::max(end, p.events.back().time);
      any = true;
    }
  }
  cachedStart_.store(start, std::memory_order_relaxed);
  cachedEnd_.store(end, std::memory_order_relaxed);
  boundsCached_.store(true, std::memory_order_release);
}

Timestamp Trace::startTime() const {
  if (!boundsCached_.load(std::memory_order_acquire)) {
    computeTimeBounds();
  }
  return cachedStart_.load(std::memory_order_relaxed);
}

Timestamp Trace::endTime() const {
  if (!boundsCached_.load(std::memory_order_acquire)) {
    computeTimeBounds();
  }
  return cachedEnd_.load(std::memory_order_relaxed);
}

void Trace::invalidateTimeBounds() {
  boundsCached_.store(false, std::memory_order_release);
}

double Trace::durationSeconds() const {
  return toSeconds(endTime() - startTime());
}

}  // namespace perfvar::trace
