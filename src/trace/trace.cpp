#include "trace/trace.hpp"

#include <algorithm>

namespace perfvar::trace {

bool Trace::isQuarantined(ProcessId p) const {
  for (const auto& q : quarantined) {
    if (q.process == p) {
      return true;
    }
  }
  return false;
}

std::size_t Trace::eventCount() const {
  std::size_t n = 0;
  for (const auto& p : processes) {
    n += p.events.size();
  }
  return n;
}

Timestamp Trace::startTime() const {
  Timestamp t = 0;
  bool any = false;
  for (const auto& p : processes) {
    if (!p.events.empty()) {
      t = any ? std::min(t, p.events.front().time) : p.events.front().time;
      any = true;
    }
  }
  return t;
}

Timestamp Trace::endTime() const {
  Timestamp t = 0;
  for (const auto& p : processes) {
    if (!p.events.empty()) {
      t = std::max(t, p.events.back().time);
    }
  }
  return t;
}

double Trace::durationSeconds() const {
  return toSeconds(endTime() - startTime());
}

}  // namespace perfvar::trace
