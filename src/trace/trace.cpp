#include "trace/trace.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace perfvar::trace {

bool Trace::isQuarantined(ProcessId p) const {
  for (const auto& q : quarantined) {
    if (q.process == p) {
      return true;
    }
  }
  return false;
}

std::size_t Trace::eventCount() const {
  std::size_t n = 0;
  for (const auto& p : processes) {
    n += p.events.size();
  }
  return n;
}

Timestamp Trace::startTime() const {
  Timestamp t = 0;
  bool any = false;
  for (const auto& p : processes) {
    if (!p.events.empty()) {
      t = any ? std::min(t, p.events.front().time) : p.events.front().time;
      any = true;
    }
  }
  return t;
}

Timestamp Trace::endTime() const {
  Timestamp t = 0;
  for (const auto& p : processes) {
    if (!p.events.empty()) {
      t = std::max(t, p.events.back().time);
    }
  }
  return t;
}

double Trace::durationSeconds() const {
  return toSeconds(endTime() - startTime());
}

std::vector<ValidationIssue> validate(const Trace& trace) {
  std::vector<ValidationIssue> issues;
  const auto report = [&](ProcessId p, std::size_t i, std::string msg) {
    issues.push_back(ValidationIssue{p, i, std::move(msg)});
  };

  for (ProcessId p = 0; p < trace.processes.size(); ++p) {
    const auto& events = trace.processes[p].events;
    std::vector<FunctionId> stack;
    Timestamp last = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      if (i > 0 && e.time < last) {
        report(p, i, "timestamp decreases");
      }
      last = e.time;
      switch (e.kind) {
        case EventKind::Enter:
          if (e.ref >= trace.functions.size()) {
            report(p, i, "enter references undefined function");
          } else {
            stack.push_back(e.ref);
          }
          break;
        case EventKind::Leave:
          if (e.ref >= trace.functions.size()) {
            report(p, i, "leave references undefined function");
          } else if (stack.empty()) {
            report(p, i, "leave without matching enter");
          } else if (stack.back() != e.ref) {
            std::ostringstream os;
            os << "leave of '" << trace.functions.name(e.ref)
               << "' does not match innermost enter '"
               << trace.functions.name(stack.back()) << "'";
            report(p, i, os.str());
          } else {
            stack.pop_back();
          }
          break;
        case EventKind::MpiSend:
        case EventKind::MpiRecv:
          if (e.ref >= trace.processes.size()) {
            report(p, i, "message references undefined peer process");
          } else if (e.ref == p) {
            report(p, i, "message to/from self");
          }
          break;
        case EventKind::Metric:
          if (e.ref >= trace.metrics.size()) {
            report(p, i, "metric sample references undefined metric");
          }
          break;
      }
    }
    if (!stack.empty()) {
      std::ostringstream os;
      os << stack.size() << " unclosed enter frame(s), innermost '"
         << trace.functions.name(stack.back()) << "'";
      report(p, events.size(), os.str());
    }
  }
  return issues;
}

void requireValid(const Trace& trace) {
  const auto issues = validate(trace);
  if (issues.empty()) {
    return;
  }
  std::ostringstream os;
  os << "invalid trace (" << issues.size() << " issue(s)):";
  const std::size_t shown = std::min<std::size_t>(issues.size(), 5);
  for (std::size_t i = 0; i < shown; ++i) {
    os << "\n  process " << issues[i].process << ", event "
       << issues[i].eventIndex << ": " << issues[i].message;
  }
  if (issues.size() > shown) {
    os << "\n  ...";
  }
  ErrorContext context;
  context.code = ErrorCode::MalformedEvent;
  context.rank = static_cast<std::int64_t>(issues.front().process);
  throw Error(os.str(), std::move(context));
}

}  // namespace perfvar::trace
