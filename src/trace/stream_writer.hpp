#ifndef PERFVAR_TRACE_STREAM_WRITER_HPP
#define PERFVAR_TRACE_STREAM_WRITER_HPP

/// \file stream_writer.hpp
/// Rank-by-rank streaming writer of PVTF v2 trace files.
///
/// V2StreamWriter produces byte-identical output to writeBinary() (v2)
/// without ever holding more than one rank's events in memory: the header
/// and block table are written as placeholders up front, each rank's block
/// is encoded and appended as it arrives, and finish() seeks back to patch
/// the table and re-seal the header hash. This is how six-figure-rank
/// traces are generated to disk (see apps::writeScaleTrace) — peak memory
/// is one rank's event vector, not the whole run.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/definitions.hpp"
#include "trace/event.hpp"

namespace perfvar::trace {

/// Streaming v2 writer. Usage: construct with the definitions and the
/// full process-name list, call writeRank() once per rank in process
/// order, then finish(). Abandoning the writer without finish() leaves an
/// unreadable file (the header hash is still the placeholder).
class V2StreamWriter {
public:
  /// Open `path` and write the prologue, placeholder header/table and the
  /// definitions block. Throws perfvar::Error on I/O failure or an empty
  /// process list.
  V2StreamWriter(const std::string& path, std::uint64_t resolution,
                 const FunctionRegistry& functions,
                 const MetricRegistry& metrics,
                 const std::vector<std::string>& processNames);

  V2StreamWriter(const V2StreamWriter&) = delete;
  V2StreamWriter& operator=(const V2StreamWriter&) = delete;

  /// Encode and append the event block of the next rank. Ranks must be
  /// written in process order (0, 1, ..., P-1); `rank` re-states the
  /// expected index as a guard. Events must be time-sorted.
  void writeRank(ProcessId rank, const Event* events, std::size_t count);
  void writeRank(ProcessId rank, const std::vector<Event>& events) {
    writeRank(rank, events.data(), events.size());
  }

  /// Patch the block table, re-seal the header hash and close the file.
  /// Every rank must have been written. Throws on I/O failure.
  void finish();

  /// Ranks written so far.
  std::size_t ranksWritten() const { return nextRank_; }

private:
  std::ofstream out_;
  std::string path_;
  std::string fixedHeader_;  ///< bytes [16, 48): resolution, P, defs size/hash
  std::string table_;        ///< table bytes, patched as ranks arrive
  std::size_t processCount_ = 0;
  std::size_t nextRank_ = 0;
  std::uint64_t offset_ = 0;  ///< absolute offset of the next event block
  bool finished_ = false;
};

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_STREAM_WRITER_HPP
