#include "trace/builder.hpp"

#include <sstream>

#include "util/error.hpp"

namespace perfvar::trace {

TraceBuilder::TraceBuilder(std::size_t processCount, std::uint64_t resolution) {
  PERFVAR_REQUIRE(processCount > 0, "trace needs at least one process");
  PERFVAR_REQUIRE(resolution > 0, "resolution must be positive");
  trace_.resolution = resolution;
  trace_.processes.resize(processCount);
  for (std::size_t i = 0; i < processCount; ++i) {
    trace_.processes[i].name = "Rank " + std::to_string(i);
  }
  stacks_.resize(processCount);
  lastTime_.assign(processCount, 0);
}

FunctionId TraceBuilder::defineFunction(const std::string& name,
                                        const std::string& group,
                                        Paradigm paradigm) {
  return trace_.functions.intern(name, group, paradigm);
}

MetricId TraceBuilder::defineMetric(const std::string& name,
                                    const std::string& unit, MetricMode mode) {
  return trace_.metrics.intern(name, unit, mode);
}

void TraceBuilder::setProcessName(ProcessId p, const std::string& name) {
  checkProcess(p);
  trace_.processes[p].name = name;
}

void TraceBuilder::checkProcess(ProcessId p) const {
  PERFVAR_REQUIRE(!finished_, "builder already finished");
  PERFVAR_REQUIRE(p < trace_.processes.size(), "invalid process id");
}

void TraceBuilder::checkTime(ProcessId p, Timestamp t) const {
  if (!trace_.processes[p].events.empty()) {
    PERFVAR_REQUIRE(t >= lastTime_[p],
                    "timestamps must be non-decreasing per process");
  }
}

void TraceBuilder::enter(ProcessId p, Timestamp t, FunctionId f) {
  checkProcess(p);
  checkTime(p, t);
  PERFVAR_REQUIRE(f < trace_.functions.size(), "enter of undefined function");
  trace_.processes[p].events.push_back(Event::enter(t, f));
  stacks_[p].push_back(f);
  lastTime_[p] = t;
}

void TraceBuilder::leave(ProcessId p, Timestamp t, FunctionId f) {
  checkProcess(p);
  checkTime(p, t);
  PERFVAR_REQUIRE(f < trace_.functions.size(), "leave of undefined function");
  PERFVAR_REQUIRE(!stacks_[p].empty(), "leave without matching enter");
  if (stacks_[p].back() != f) {
    std::ostringstream os;
    os << "leave of '" << trace_.functions.name(f)
       << "' does not match innermost enter '"
       << trace_.functions.name(stacks_[p].back()) << "'";
    throw Error(os.str());
  }
  trace_.processes[p].events.push_back(Event::leave(t, f));
  stacks_[p].pop_back();
  lastTime_[p] = t;
}

void TraceBuilder::mpiSend(ProcessId p, Timestamp t, ProcessId receiver,
                           std::uint32_t tag, std::uint64_t bytes) {
  checkProcess(p);
  checkTime(p, t);
  PERFVAR_REQUIRE(receiver < trace_.processes.size(), "send to undefined peer");
  PERFVAR_REQUIRE(receiver != p, "send to self");
  trace_.processes[p].events.push_back(Event::mpiSend(t, receiver, tag, bytes));
  lastTime_[p] = t;
}

void TraceBuilder::mpiRecv(ProcessId p, Timestamp t, ProcessId sender,
                           std::uint32_t tag, std::uint64_t bytes) {
  checkProcess(p);
  checkTime(p, t);
  PERFVAR_REQUIRE(sender < trace_.processes.size(), "recv from undefined peer");
  PERFVAR_REQUIRE(sender != p, "recv from self");
  trace_.processes[p].events.push_back(Event::mpiRecv(t, sender, tag, bytes));
  lastTime_[p] = t;
}

void TraceBuilder::metric(ProcessId p, Timestamp t, MetricId m, double value) {
  checkProcess(p);
  checkTime(p, t);
  PERFVAR_REQUIRE(m < trace_.metrics.size(), "sample of undefined metric");
  trace_.processes[p].events.push_back(Event::metric(t, m, value));
  lastTime_[p] = t;
}

std::size_t TraceBuilder::depth(ProcessId p) const {
  checkProcess(p);
  return stacks_[p].size();
}

std::size_t TraceBuilder::eventCount(ProcessId p) const {
  checkProcess(p);
  return trace_.processes[p].events.size();
}

Trace TraceBuilder::finish() {
  PERFVAR_REQUIRE(!finished_, "builder already finished");
  for (ProcessId p = 0; p < stacks_.size(); ++p) {
    if (!stacks_[p].empty()) {
      std::ostringstream os;
      os << "process " << p << " has " << stacks_[p].size()
         << " unclosed enter frame(s), innermost '"
         << trace_.functions.name(stacks_[p].back()) << "'";
      throw Error(os.str());
    }
  }
  finished_ = true;
  return std::move(trace_);
}

}  // namespace perfvar::trace
