#ifndef PERFVAR_TRACE_TYPES_HPP
#define PERFVAR_TRACE_TYPES_HPP

/// \file types.hpp
/// Fundamental identifier and time types of the trace data model.
///
/// The model follows the structure of OTF2/Score-P traces: a trace holds
/// global *definitions* (functions, metrics, processes) plus one
/// time-sorted event stream per process ("location" in OTF2 terms).

#include <cstdint>
#include <limits>
#include <string>

namespace perfvar::trace {

/// Integer timestamp in clock ticks. The trace records its tick resolution
/// (ticks per second); the default is nanoseconds.
using Timestamp = std::uint64_t;

/// Index of a process (MPI rank / OTF2 location).
using ProcessId = std::uint32_t;

/// Identifier of a function (OTF2 region) definition.
using FunctionId = std::uint32_t;

/// Identifier of a metric (hardware counter / derived value) definition.
using MetricId = std::uint32_t;

inline constexpr FunctionId kInvalidFunction =
    std::numeric_limits<FunctionId>::max();
inline constexpr MetricId kInvalidMetric = std::numeric_limits<MetricId>::max();

/// Programming-model classification of a function, mirroring Score-P's
/// region paradigms. The synchronization-oblivious analysis uses this to
/// decide which invocations count as synchronization/communication.
enum class Paradigm : std::uint8_t {
  Compute,  ///< user/application computation
  MPI,      ///< MPI API calls
  OpenMP,   ///< OpenMP runtime constructs (barriers, etc.)
  IO,       ///< file input/output
  Memory,   ///< allocation and data movement
  Other,    ///< anything else (instrumentation overhead, ...)
};

/// Human-readable paradigm name ("COMPUTE", "MPI", ...).
const char* paradigmName(Paradigm p);

/// Parse a paradigm name produced by paradigmName(); throws perfvar::Error
/// for unknown names.
Paradigm paradigmFromName(const std::string& name);

/// How a metric's samples are to be interpreted.
enum class MetricMode : std::uint8_t {
  Accumulated,  ///< monotonically accumulated counter (e.g. PAPI_TOT_CYC)
  Absolute,     ///< instantaneous value (e.g. memory usage)
};

/// Seconds represented by `ticks` at `resolution` ticks per second.
inline double ticksToSeconds(Timestamp ticks, std::uint64_t resolution) {
  return static_cast<double>(ticks) / static_cast<double>(resolution);
}

/// Ticks represented by `s` seconds at `resolution` ticks per second
/// (rounded to nearest).
Timestamp secondsToTicks(double s, std::uint64_t resolution);

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_TYPES_HPP
