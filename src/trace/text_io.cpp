#include "trace/text_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace perfvar::trace {

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
  return out;
}

/// Minimal tokenizer for one PVTX line: whitespace-separated words plus
/// double-quoted strings with backslash escapes.
class LineParser {
public:
  LineParser(const std::string& line, std::size_t lineNo)
      : line_(line), lineNo_(lineNo) {}

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("PVTX line " + std::to_string(lineNo_) + ": " + msg);
  }

  bool atEnd() {
    skipSpace();
    return pos_ >= line_.size();
  }

  std::string word() {
    skipSpace();
    if (pos_ >= line_.size()) {
      fail("expected token");
    }
    const std::size_t start = pos_;
    while (pos_ < line_.size() && !std::isspace(
               static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
    return line_.substr(start, pos_ - start);
  }

  std::string quoted() {
    skipSpace();
    if (pos_ >= line_.size() || line_[pos_] != '"') {
      fail("expected quoted string");
    }
    ++pos_;
    std::string out;
    while (pos_ < line_.size() && line_[pos_] != '"') {
      if (line_[pos_] == '\\' && pos_ + 1 < line_.size()) {
        ++pos_;
      }
      out += line_[pos_++];
    }
    if (pos_ >= line_.size()) {
      fail("unterminated quoted string");
    }
    ++pos_;  // closing quote
    return out;
  }

  std::uint64_t u64() {
    const std::string w = word();
    try {
      std::size_t used = 0;
      const std::uint64_t v = std::stoull(w, &used);
      if (used != w.size()) {
        fail("invalid integer '" + w + "'");
      }
      return v;
    } catch (const std::logic_error&) {
      fail("invalid integer '" + w + "'");
    }
  }

  double f64() {
    const std::string w = word();
    try {
      std::size_t used = 0;
      const double v = std::stod(w, &used);
      if (used != w.size()) {
        fail("invalid number '" + w + "'");
      }
      return v;
    } catch (const std::logic_error&) {
      fail("invalid number '" + w + "'");
    }
  }

private:
  void skipSpace() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& line_;
  std::size_t lineNo_;
  std::size_t pos_ = 0;
};

const char* metricModeName(MetricMode m) {
  return m == MetricMode::Accumulated ? "ACCUMULATED" : "ABSOLUTE";
}

}  // namespace

void writeText(const Trace& trace, std::ostream& out) {
  out << "PVTX 1\n";
  out << "resolution " << trace.resolution << '\n';
  for (std::size_t i = 0; i < trace.functions.size(); ++i) {
    const FunctionDef& f = trace.functions.at(static_cast<FunctionId>(i));
    out << "function " << i << ' ' << quote(f.name) << ' ' << quote(f.group)
        << ' ' << paradigmName(f.paradigm) << '\n';
  }
  for (std::size_t i = 0; i < trace.metrics.size(); ++i) {
    const MetricDef& m = trace.metrics.at(static_cast<MetricId>(i));
    out << "metric " << i << ' ' << quote(m.name) << ' ' << quote(m.unit)
        << ' ' << metricModeName(m.mode) << '\n';
  }
  for (std::size_t p = 0; p < trace.processes.size(); ++p) {
    const ProcessTrace& proc = trace.processes[p];
    out << "process " << p << ' ' << quote(proc.name) << '\n';
    for (const Event& e : proc.events) {
      switch (e.kind) {
        case EventKind::Enter:
          out << "E " << e.time << ' ' << e.ref << '\n';
          break;
        case EventKind::Leave:
          out << "L " << e.time << ' ' << e.ref << '\n';
          break;
        case EventKind::MpiSend:
          out << "S " << e.time << ' ' << e.ref << ' ' << e.aux << ' '
              << e.size << '\n';
          break;
        case EventKind::MpiRecv:
          out << "R " << e.time << ' ' << e.ref << ' ' << e.aux << ' '
              << e.size << '\n';
          break;
        case EventKind::Metric: {
          std::ostringstream val;
          val.precision(17);
          val << e.value;
          out << "M " << e.time << ' ' << e.ref << ' ' << val.str() << '\n';
          break;
        }
      }
    }
  }
}

Trace readText(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t lineNo = 0;
  ProcessTrace* current = nullptr;
  bool seenResolution = false;

  const auto nextLine = [&]() -> bool {
    while (std::getline(in, line)) {
      ++lineNo;
      // Skip blank lines and comments.
      std::size_t i = 0;
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      if (i >= line.size() || line[i] == '#') {
        continue;
      }
      return true;
    }
    return false;
  };

  PERFVAR_REQUIRE(nextLine(), "PVTX: empty input");
  {
    LineParser p(line, lineNo);
    const std::string magic = p.word();
    if (magic != "PVTX") {
      p.fail("bad magic '" + magic + "'");
    }
    const std::uint64_t version = p.u64();
    if (version != 1) {
      p.fail("unsupported version " + std::to_string(version));
    }
  }

  while (nextLine()) {
    LineParser p(line, lineNo);
    const std::string tag = p.word();
    if (tag == "resolution") {
      trace.resolution = p.u64();
      if (trace.resolution == 0) {
        p.fail("zero resolution");
      }
      seenResolution = true;
    } else if (tag == "function") {
      const std::uint64_t id = p.u64();
      const std::string name = p.quoted();
      const std::string group = p.quoted();
      const std::string paradigm = p.word();
      const FunctionId actual =
          trace.functions.intern(name, group, paradigmFromName(paradigm));
      if (actual != id) {
        p.fail("function id mismatch");
      }
    } else if (tag == "metric") {
      const std::uint64_t id = p.u64();
      const std::string name = p.quoted();
      const std::string unit = p.quoted();
      const std::string modeName = p.word();
      MetricMode mode;
      if (modeName == "ACCUMULATED") {
        mode = MetricMode::Accumulated;
      } else if (modeName == "ABSOLUTE") {
        mode = MetricMode::Absolute;
      } else {
        p.fail("unknown metric mode '" + modeName + "'");
      }
      const MetricId actual = trace.metrics.intern(name, unit, mode);
      if (actual != id) {
        p.fail("metric id mismatch");
      }
    } else if (tag == "process") {
      if (!seenResolution) {
        // Without an explicit resolution, timestamps would silently be
        // interpreted at the default rate - refuse instead.
        p.fail("process record before a resolution record");
      }
      const std::uint64_t id = p.u64();
      if (id != trace.processes.size()) {
        p.fail("process ids must be consecutive");
      }
      trace.processes.emplace_back();
      current = &trace.processes.back();
      current->name = p.quoted();
    } else if (tag == "E" || tag == "L" || tag == "S" || tag == "R" ||
               tag == "M") {
      if (current == nullptr) {
        p.fail("event before first process");
      }
      Event e;
      e.time = p.u64();
      if (tag == "E" || tag == "L") {
        e.kind = tag == "E" ? EventKind::Enter : EventKind::Leave;
        e.ref = static_cast<std::uint32_t>(p.u64());
      } else if (tag == "S" || tag == "R") {
        e.kind = tag == "S" ? EventKind::MpiSend : EventKind::MpiRecv;
        e.ref = static_cast<std::uint32_t>(p.u64());
        e.aux = static_cast<std::uint32_t>(p.u64());
        e.size = p.u64();
      } else {
        e.kind = EventKind::Metric;
        e.ref = static_cast<std::uint32_t>(p.u64());
        e.value = p.f64();
      }
      current->events.push_back(e);
    } else {
      p.fail("unknown record '" + tag + "'");
    }
    if (!p.atEnd()) {
      p.fail("trailing tokens");
    }
  }
  PERFVAR_REQUIRE(!trace.processes.empty(), "PVTX: no processes");
  return trace;
}

std::string toText(const Trace& trace) {
  std::ostringstream os;
  writeText(trace, os);
  return os.str();
}

Trace fromText(const std::string& text) {
  std::istringstream is(text);
  return readText(is);
}

void saveTextFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  PERFVAR_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  writeText(trace, out);
  out.close();
  PERFVAR_REQUIRE(out.good(), "write to '" + path + "' failed");
}

Trace loadTextFile(const std::string& path) {
  std::ifstream in(path);
  PERFVAR_REQUIRE(in.good(), "cannot open '" + path + "' for reading");
  return readText(in);
}

}  // namespace perfvar::trace
