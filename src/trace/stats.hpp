#ifndef PERFVAR_TRACE_STATS_HPP
#define PERFVAR_TRACE_STATS_HPP

/// \file stats.hpp
/// Cheap whole-trace statistics (event counts, message volume, time span).

#include <array>
#include <cstdint>
#include <string>

#include "trace/trace.hpp"
#include "trace/view.hpp"

namespace perfvar::trace {

/// Aggregate statistics of a trace.
struct TraceStats {
  std::size_t processCount = 0;
  std::size_t functionCount = 0;
  std::size_t metricCount = 0;
  std::size_t eventCount = 0;
  std::array<std::size_t, 5> eventsByKind{};  ///< indexed by EventKind
  std::size_t messageCount = 0;               ///< sends
  std::uint64_t messageBytes = 0;             ///< bytes sent
  Timestamp startTime = 0;
  Timestamp endTime = 0;
  double durationSeconds = 0.0;
  std::size_t maxStackDepth = 0;
};

/// Compute trace statistics in one pass (one rank pinned at a time, so
/// out-of-core views stream within their shard budget).
TraceStats computeStats(const TraceView& trace);

/// Approximate resident size of a trace in bytes: event storage plus
/// definition strings plus container overhead. The analysis server uses
/// this for its memory-budget accounting, so the estimate only needs to be
/// stable and proportional, not exact.
std::size_t approxMemoryBytes(const Trace& trace);

/// Same estimate for a view, from declared per-rank event counts — no
/// shard is decoded, so this is cheap even for an out-of-core backend
/// (it estimates the fully-materialized size, not the resident set).
std::size_t approxMemoryBytes(const TraceView& trace);

/// Multi-line human-readable rendering of the statistics.
std::string formatStats(const TraceStats& stats);

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_STATS_HPP
