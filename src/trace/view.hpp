#ifndef PERFVAR_TRACE_VIEW_HPP
#define PERFVAR_TRACE_VIEW_HPP

/// \file view.hpp
/// Read-only, span-based trace access: trace::TraceView / EventSpan.
///
/// TraceView is the data-access seam of every analysis stage. It abstracts
/// over where the event streams live:
///
///   - **Eager** backends wrap an in-memory Trace (borrowed, owned or
///     shared); rank() hands out zero-copy spans over its vectors.
///   - The **out-of-core** backend (openFile) memory-maps a PVTF v2 file
///     and decodes per-rank blocks on demand into a bounded LRU cache of
///     decoded shards, so analyzing a 100k-rank trace never materializes
///     more than the working set. Decoded events are bit-identical to an
///     eager load (both paths run the same block codec), so every analysis
///     report is byte-identical between the two.
///
/// A TraceView is a cheap value type (one shared_ptr); copies share the
/// backend and its shard cache. Borrowed views (the implicit conversion
/// from `const Trace&`) have exactly the lifetime semantics the historical
/// `const Trace&` parameters had: the Trace must outlive the view.
///
/// rank() returns a RankPin holding shared ownership of the decoded
/// storage — LRU eviction never invalidates an outstanding pin; the
/// memory bound is budget + pinned working set (+ one in-flight shard).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/binary_io.hpp"
#include "trace/trace.hpp"

namespace perfvar::trace {

namespace detail {
class TraceViewBackend;
}  // namespace detail

/// Read-only span over one process's time-sorted events.
class EventSpan {
public:
  EventSpan() = default;
  EventSpan(const Event* data, std::size_t size) : data_(data), size_(size) {}

  const Event* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Event* begin() const { return data_; }
  const Event* end() const { return data_ + size_; }
  const Event& operator[](std::size_t i) const { return data_[i]; }
  const Event& front() const { return data_[0]; }
  const Event& back() const { return data_[size_ - 1]; }

private:
  const Event* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Pinned, decoded event stream of one rank. The pin shares ownership of
/// the decoded storage (and of the backend), so a shard stays valid for as
/// long as any pin references it even if the backend's LRU evicts it.
class RankPin {
public:
  RankPin() = default;

  const std::string& name() const { return *name_; }
  EventSpan events() const { return span_; }

private:
  friend class TraceView;
  friend class detail::TraceViewBackend;
  RankPin(std::shared_ptr<const void> hold, const std::string* name,
          EventSpan span)
      : hold_(std::move(hold)), name_(name), span_(span) {}

  std::shared_ptr<const void> hold_;  ///< decoded storage (+ backend)
  const std::string* name_ = nullptr;
  EventSpan span_;
};

/// Shard-cache telemetry of a view (all zero for eager backends).
struct TraceViewStats {
  std::uint64_t shardDecodes = 0;    ///< blocks decoded from the file
  std::uint64_t shardHits = 0;       ///< rank() calls served from cache
  std::uint64_t shardEvictions = 0;  ///< shards dropped by the LRU
  std::uint64_t residentBytes = 0;   ///< decoded bytes currently cached
  std::uint64_t peakResidentBytes = 0;  ///< high-water mark of the above
};

/// Options of TraceView::openFile().
struct TraceViewOptions {
  /// Decoded-shard LRU budget in bytes (0 = keep only the shard being
  /// pinned). The cache may overshoot by at most one shard so the shard
  /// currently requested always fits.
  std::size_t shardBudgetBytes = 256ull << 20;
  /// Memory-map the file when the platform supports it; buffered
  /// whole-file read otherwise (util::FileView semantics).
  bool mapFile = true;
  /// Strict (default): header/table/defs verify at open, block checksums
  /// verify at first access — a corrupt block throws from rank().
  /// Salvage: every block is additionally verified and classified at open
  /// (one streaming pass, bounded memory); faulty ranks are quarantined
  /// with their balanced salvaged prefix kept resident, byte-identical to
  /// an eager salvage load.
  RecoveryMode recovery = RecoveryMode::Strict;
  /// When set, receives the per-rank outcome of a Salvage open.
  LoadReport* report = nullptr;
};

/// Read-only view of a trace over an eager or out-of-core backend.
class TraceView {
public:
  /// Invalid view; every accessor throws. valid() distinguishes.
  TraceView() = default;

  /// Borrowed view over an in-memory trace (implicit — existing
  /// `const Trace&` call sites keep working). The trace must outlive the
  /// view and must not be mutated while viewed.
  TraceView(const Trace& trace);  // NOLINT(google-explicit-constructor)

  /// Deleted: binding a view to a temporary Trace would dangle. Use
  /// TraceView::owned(std::move(trace)) to transfer ownership.
  TraceView(Trace&& trace) = delete;

  /// Explicit spelling of the borrowed conversion.
  static TraceView of(const Trace& trace) { return TraceView(trace); }

  /// View sharing ownership of an in-memory trace.
  static TraceView shared(std::shared_ptr<const Trace> trace);

  /// View taking ownership of an in-memory trace.
  static TraceView owned(Trace&& trace);

  /// Out-of-core view of a PVTF v2 file: mmap + per-rank lazy decode into
  /// a bounded LRU of decoded shards. v1 files (no per-rank block table)
  /// are materialized eagerly behind the same interface. Throws
  /// perfvar::Error on open faults (see TraceViewOptions::recovery).
  static TraceView openFile(const std::string& path,
                            const TraceViewOptions& options = {});

  bool valid() const { return backend_ != nullptr; }

  std::uint64_t resolution() const;
  double toSeconds(Timestamp t) const {
    return ticksToSeconds(t, resolution());
  }
  const FunctionRegistry& functions() const;
  const MetricRegistry& metrics() const;
  std::size_t processCount() const;
  const std::string& processName(ProcessId p) const;

  /// Declared event count of one rank (from the block table for the lazy
  /// backend — no decode).
  std::uint64_t eventCount(ProcessId p) const;
  /// Total declared events across all ranks.
  std::size_t eventCount() const;

  /// Ranks quarantined by a salvage open/load, sorted by process id.
  const std::vector<QuarantinedRank>& quarantined() const;
  bool isQuarantined(ProcessId p) const;

  /// Earliest/latest event timestamp (0 for an empty trace). Lazily
  /// computed — one bounded streaming pass for the out-of-core backend —
  /// then cached on the backend.
  Timestamp startTime() const;
  Timestamp endTime() const;
  double durationSeconds() const {
    return toSeconds(endTime() - startTime());
  }

  /// Pin rank `p`: decode (or fetch from cache) its event shard and return
  /// a handle that keeps the decoded events alive. Thread-safe.
  RankPin rank(ProcessId p) const;

  /// Sub-view over a subset of ranks with the exact trace::selectProcesses
  /// semantics: dense renumbering, messages to dropped peers removed,
  /// surviving peer refs remapped. Eager backends materialize the filtered
  /// trace; the out-of-core backend filters at shard-decode time.
  TraceView selectProcesses(const std::vector<ProcessId>& processes) const;

  /// Sub-view without the quarantined ranks (identity when none are).
  TraceView dropQuarantined() const;

  /// The underlying in-memory Trace for eager backends, nullptr for the
  /// out-of-core ones. Transitional escape hatch for consumers not yet
  /// span-migrated (vis, text dump).
  const Trace* eagerOrNull() const;

  /// Materialize the whole view as an in-memory Trace (decodes every
  /// shard; O(total events) memory — small traces only).
  Trace materialize() const;

  /// Shard-cache counters (zeros for eager backends). Thread-safe.
  TraceViewStats stats() const;

  /// Stable identity of the backend for cache keying (engine
  /// fingerprints): equal only for views sharing one backend.
  const void* backendIdentity() const { return backend_.get(); }

private:
  explicit TraceView(std::shared_ptr<const detail::TraceViewBackend> backend)
      : backend_(std::move(backend)) {}

  const detail::TraceViewBackend& backend() const;

  std::shared_ptr<const detail::TraceViewBackend> backend_;
};

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_VIEW_HPP
