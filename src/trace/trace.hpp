#ifndef PERFVAR_TRACE_TRACE_HPP
#define PERFVAR_TRACE_TRACE_HPP

/// \file trace.hpp
/// The in-memory trace container and its validation.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/definitions.hpp"
#include "trace/event.hpp"
#include "util/error.hpp"

namespace perfvar::trace {

/// Event stream of one process (OTF2 location).
struct ProcessTrace {
  std::string name;           ///< e.g. "Rank 17"
  std::vector<Event> events;  ///< time-sorted
};

/// A rank whose on-disk block failed verification during a salvage load
/// (BinaryReadOptions::recovery == RecoveryMode::Salvage). The process
/// stays in Trace::processes — holding whatever balanced event prefix was
/// recovered, possibly none — but analyses must not trust it.
struct QuarantinedRank {
  ProcessId process = 0;      ///< index into Trace::processes
  std::string name;           ///< process name (may be empty if lost)
  ErrorCode error = ErrorCode::Generic;  ///< why the rank was quarantined
  std::uint64_t bytesSalvaged = 0;   ///< encoded bytes decoded successfully
  std::uint64_t eventsSalvaged = 0;  ///< decoded events kept (before closers)
  std::uint64_t eventsDropped = 0;   ///< declared events lost to the fault
};

/// A complete trace: definitions plus one event stream per process.
struct Trace {
  /// Ticks per second of all timestamps; defaults to nanoseconds.
  std::uint64_t resolution = 1'000'000'000ULL;
  FunctionRegistry functions;
  MetricRegistry metrics;
  std::vector<ProcessTrace> processes;

  /// Ranks quarantined by a salvage load, sorted by process id; empty for
  /// every trace loaded strictly or built in memory. Analyses skip these
  /// ranks (see trace::dropQuarantined / analysis::analyzeTrace).
  std::vector<QuarantinedRank> quarantined;

  Trace() = default;
  // The copy/move members exist only because of the atomic time-bounds
  // cache below; copies and moved-into traces start with a cold cache.
  Trace(const Trace& other);
  Trace& operator=(const Trace& other);
  Trace(Trace&& other) noexcept;
  Trace& operator=(Trace&& other) noexcept;

  std::size_t processCount() const { return processes.size(); }

  /// True when process `p` was quarantined by a salvage load.
  bool isQuarantined(ProcessId p) const;

  /// Total number of events across all processes.
  std::size_t eventCount() const;

  /// Earliest event timestamp (0 for an empty trace). Memoized: the first
  /// call scans every stream, later calls return the cached bound. See
  /// invalidateTimeBounds() for the mutation contract.
  Timestamp startTime() const;

  /// Latest event timestamp (0 for an empty trace). Memoized like
  /// startTime().
  Timestamp endTime() const;

  /// Drop the cached start/end time bounds. The library's own mutation
  /// seams (appendBinaryBuffer, TraceBuilder, assignment) invalidate for
  /// you; call this yourself after mutating `processes` event streams
  /// directly on a trace whose bounds were already queried.
  void invalidateTimeBounds();

  /// Trace duration in seconds.
  double durationSeconds() const;

  /// Seconds represented by `t` ticks under this trace's resolution.
  double toSeconds(Timestamp t) const { return ticksToSeconds(t, resolution); }

private:
  void computeTimeBounds() const;

  // Thread-safe memoization of startTime()/endTime(): concurrent readers
  // may race to compute, but they store identical values through atomics
  // (the scan is deterministic), so the cache is benign under TSan.
  mutable std::atomic<Timestamp> cachedStart_{0};
  mutable std::atomic<Timestamp> cachedEnd_{0};
  mutable std::atomic<bool> boundsCached_{false};
};

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_TRACE_HPP
