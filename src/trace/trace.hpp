#ifndef PERFVAR_TRACE_TRACE_HPP
#define PERFVAR_TRACE_TRACE_HPP

/// \file trace.hpp
/// The in-memory trace container and its validation.

#include <cstdint>
#include <string>
#include <vector>

#include "trace/definitions.hpp"
#include "trace/event.hpp"
#include "util/error.hpp"

namespace perfvar::trace {

/// Event stream of one process (OTF2 location).
struct ProcessTrace {
  std::string name;           ///< e.g. "Rank 17"
  std::vector<Event> events;  ///< time-sorted
};

/// A rank whose on-disk block failed verification during a salvage load
/// (BinaryReadOptions::recovery == RecoveryMode::Salvage). The process
/// stays in Trace::processes — holding whatever balanced event prefix was
/// recovered, possibly none — but analyses must not trust it.
struct QuarantinedRank {
  ProcessId process = 0;      ///< index into Trace::processes
  std::string name;           ///< process name (may be empty if lost)
  ErrorCode error = ErrorCode::Generic;  ///< why the rank was quarantined
  std::uint64_t bytesSalvaged = 0;   ///< encoded bytes decoded successfully
  std::uint64_t eventsSalvaged = 0;  ///< decoded events kept (before closers)
  std::uint64_t eventsDropped = 0;   ///< declared events lost to the fault
};

/// A complete trace: definitions plus one event stream per process.
struct Trace {
  /// Ticks per second of all timestamps; defaults to nanoseconds.
  std::uint64_t resolution = 1'000'000'000ULL;
  FunctionRegistry functions;
  MetricRegistry metrics;
  std::vector<ProcessTrace> processes;

  /// Ranks quarantined by a salvage load, sorted by process id; empty for
  /// every trace loaded strictly or built in memory. Analyses skip these
  /// ranks (see trace::dropQuarantined / analysis::analyzeTrace).
  std::vector<QuarantinedRank> quarantined;

  std::size_t processCount() const { return processes.size(); }

  /// True when process `p` was quarantined by a salvage load.
  bool isQuarantined(ProcessId p) const;

  /// Total number of events across all processes.
  std::size_t eventCount() const;

  /// Earliest event timestamp (0 for an empty trace).
  Timestamp startTime() const;

  /// Latest event timestamp (0 for an empty trace).
  Timestamp endTime() const;

  /// Trace duration in seconds.
  double durationSeconds() const;

  /// Seconds represented by `t` ticks under this trace's resolution.
  double toSeconds(Timestamp t) const { return ticksToSeconds(t, resolution); }
};

/// One problem found by validate().
struct ValidationIssue {
  ProcessId process = 0;
  std::size_t eventIndex = 0;  ///< index into the process event stream
  std::string message;
};

/// Structural validation of a trace. Checks per process stream:
///  - timestamps are non-decreasing,
///  - Enter/Leave are properly nested and Leave matches the innermost Enter,
///  - every referenced function/metric id is defined,
///  - all Enter frames are closed by the end of the stream.
/// Message events are additionally checked for self-messages.
/// Returns all issues found (empty == valid).
///
/// Deprecated: validate() is subsumed by the lint engine (lint/lint.hpp)
/// and now forwards to it, running exactly the structural rules listed
/// above (clock-monotonicity, stack-balance, undefined-function-ref,
/// undefined-metric-ref, message-endpoints); issue order and messages are
/// unchanged. New code should call lint::lintTrace(), which also covers
/// the semantic rules (message pairing, sync coverage, dominant
/// eligibility, ...) and reports severities. Defined in the perfvar_lint
/// library: linking against validate()/requireValid() requires it.
std::vector<ValidationIssue> validate(const Trace& trace);

/// Convenience: throws perfvar::Error listing the first issues if the trace
/// is not valid. Deprecated alongside validate(); prefer checking
/// lint::LintReport::hasAtLeast(lint::Severity::Error).
void requireValid(const Trace& trace);

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_TRACE_HPP
