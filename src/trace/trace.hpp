#ifndef PERFVAR_TRACE_TRACE_HPP
#define PERFVAR_TRACE_TRACE_HPP

/// \file trace.hpp
/// The in-memory trace container and its validation.

#include <cstdint>
#include <string>
#include <vector>

#include "trace/definitions.hpp"
#include "trace/event.hpp"

namespace perfvar::trace {

/// Event stream of one process (OTF2 location).
struct ProcessTrace {
  std::string name;           ///< e.g. "Rank 17"
  std::vector<Event> events;  ///< time-sorted
};

/// A complete trace: definitions plus one event stream per process.
struct Trace {
  /// Ticks per second of all timestamps; defaults to nanoseconds.
  std::uint64_t resolution = 1'000'000'000ULL;
  FunctionRegistry functions;
  MetricRegistry metrics;
  std::vector<ProcessTrace> processes;

  std::size_t processCount() const { return processes.size(); }

  /// Total number of events across all processes.
  std::size_t eventCount() const;

  /// Earliest event timestamp (0 for an empty trace).
  Timestamp startTime() const;

  /// Latest event timestamp (0 for an empty trace).
  Timestamp endTime() const;

  /// Trace duration in seconds.
  double durationSeconds() const;

  /// Seconds represented by `t` ticks under this trace's resolution.
  double toSeconds(Timestamp t) const { return ticksToSeconds(t, resolution); }
};

/// One problem found by validate().
struct ValidationIssue {
  ProcessId process = 0;
  std::size_t eventIndex = 0;  ///< index into the process event stream
  std::string message;
};

/// Structural validation of a trace. Checks per process stream:
///  - timestamps are non-decreasing,
///  - Enter/Leave are properly nested and Leave matches the innermost Enter,
///  - every referenced function/metric id is defined,
///  - all Enter frames are closed by the end of the stream.
/// Message events are additionally checked for self-messages.
/// Returns all issues found (empty == valid).
std::vector<ValidationIssue> validate(const Trace& trace);

/// Convenience: throws perfvar::Error listing the first issues if the trace
/// is not valid.
void requireValid(const Trace& trace);

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_TRACE_HPP
