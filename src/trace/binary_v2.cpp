/// \file binary_v2.cpp
/// Block-based PVTF v2 codec (see docs/FORMAT.md for the layout).
///
/// Design goals, in order:
///   1. Independently decodable per-process blocks: every block carries
///      its own event count, byte extent and FNV-1a checksum in the block
///      table, so blocks decode in parallel straight out of a memory
///      mapping with no cross-block state.
///   2. Checksums over buffers, not streams: one tight loop per block
///      instead of the v1 per-byte virtual istream hashing.
///   3. No regression in file size: the event encoding folds small `ref`
///      values into the tag byte (saving one byte for the overwhelmingly
///      common refs < 31), which pays for the fixed block table many
///      times over on any non-trivial trace.
///
/// Determinism: blocks are encoded/decoded independently and assembled in
/// process order on the calling thread, so the bytes written and the
/// Trace read are identical for every thread count.

#include <algorithm>
#include <bit>
#include <cstring>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "trace/binary_format.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace perfvar::trace::detail {

namespace {

// Fixed-width file offsets (absolute, from the start of the file):
//   0  magic "PVTF"        4 B
//   4  version u32 LE      = 2
//   8  header hash u64 LE  FNV-1a over [16, 48 + 32 * P)
//  16  resolution u64 LE
//  24  process count u64 LE (P)
//  32  defs size u64 LE
//  40  defs hash u64 LE    FNV-1a over the definitions block
//  48  block table         P entries x 32 B
//  48 + 32 * P             definitions block, then P event blocks
constexpr std::size_t kHeaderHashOffset = 8;
constexpr std::size_t kFixedHeaderOffset = 16;
constexpr std::size_t kTableOffset = 48;
constexpr std::size_t kTableEntrySize = 32;

/// In the tag byte, bits 0-2 hold the EventKind and bits 3-7 a small
/// `ref`; kRefEscape means "ref is a varint after the timestamp delta".
constexpr std::uint32_t kRefEscape = 31;

struct TableEntry {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t events = 0;
  std::uint64_t hash = 0;
};

std::uint64_t fnv1a(const unsigned char* data, std::size_t n) {
  return util::Hasher{}.bytes(data, n).digest();
}

// ---- buffer primitives ----------------------------------------------------

void putU64LE(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint64_t getU64LE(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

/// Append-only encoder over a std::string buffer.
class BufferWriter {
public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void varint(std::uint64_t v) {
    do {
      unsigned char b = static_cast<unsigned char>(v & 0x7F);
      v >>= 7;
      if (v != 0) {
        b |= 0x80;
      }
      buf_.push_back(static_cast<char>(b));
    } while (v != 0);
  }

  void f64(double v) { putU64LE(buf_, std::bit_cast<std::uint64_t>(v)); }

  void string(const std::string& s) {
    varint(s.size());
    buf_.append(s);
  }

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

private:
  std::string buf_;
};

/// Bounds-checked decoder over a byte range; every overrun throws
/// perfvar::Error (the fuzz contract: corrupt inputs never crash).
class ByteCursor {
public:
  ByteCursor(const unsigned char* begin, const unsigned char* end)
      : p_(begin), end_(end) {}

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool atEnd() const { return p_ == end_; }

  std::uint8_t u8() {
    PERFVAR_REQUIRE(p_ < end_, "binary trace v2: truncated block");
    return *p_++;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      PERFVAR_REQUIRE(shift < 64, "binary trace v2: varint too long");
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        break;
      }
      shift += 7;
    }
    return v;
  }

  double f64() {
    PERFVAR_REQUIRE(remaining() >= 8, "binary trace v2: truncated block");
    const std::uint64_t bits = getU64LE(p_);
    p_ += 8;
    return std::bit_cast<double>(bits);
  }

  std::string string() {
    const std::uint64_t n = varint();
    PERFVAR_REQUIRE(n < (1ULL << 24), "binary trace v2: oversized string");
    PERFVAR_REQUIRE(remaining() >= n, "binary trace v2: truncated string");
    std::string s(reinterpret_cast<const char*>(p_),
                  static_cast<std::size_t>(n));
    p_ += n;
    return s;
  }

private:
  const unsigned char* p_;
  const unsigned char* end_;
};

// ---- block codecs ---------------------------------------------------------

std::string encodeDefs(const Trace& trace) {
  BufferWriter w;
  w.varint(trace.functions.size());
  for (const FunctionDef& f : trace.functions.all()) {
    w.string(f.name);
    w.string(f.group);
    w.u8(static_cast<std::uint8_t>(f.paradigm));
  }
  w.varint(trace.metrics.size());
  for (const MetricDef& m : trace.metrics.all()) {
    w.string(m.name);
    w.string(m.unit);
    w.u8(static_cast<std::uint8_t>(m.mode));
  }
  for (const ProcessTrace& p : trace.processes) {
    w.string(p.name);
  }
  return w.take();
}

std::string encodeEvents(const ProcessTrace& process) {
  BufferWriter w;
  Timestamp last = 0;
  for (const Event& e : process.events) {
    const std::uint32_t refLo = std::min(e.ref, kRefEscape);
    w.u8(static_cast<std::uint8_t>(
        static_cast<std::uint32_t>(e.kind) | (refLo << 3)));
    w.varint(e.time - last);
    last = e.time;
    if (refLo == kRefEscape) {
      w.varint(e.ref);
    }
    switch (e.kind) {
      case EventKind::Enter:
      case EventKind::Leave:
        break;
      case EventKind::MpiSend:
      case EventKind::MpiRecv:
        w.varint(e.aux);
        w.varint(e.size);
        break;
      case EventKind::Metric:
        w.f64(e.value);
        break;
    }
  }
  return w.take();
}

void decodeEvents(const unsigned char* begin, const unsigned char* end,
                  std::uint64_t count, std::vector<Event>& out) {
  // Every event is at least two bytes (tag + delta), so a valid count
  // can never exceed half the block; reserving is then safe even before
  // the events are decoded.
  PERFVAR_REQUIRE(count <= static_cast<std::uint64_t>(end - begin) / 2,
                  "binary trace v2: event count exceeds block size");
  out.reserve(static_cast<std::size_t>(count));
  ByteCursor c(begin, end);
  Timestamp last = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t tag = c.u8();
    const auto kind = static_cast<EventKind>(tag & 0x07);
    PERFVAR_REQUIRE(kind <= EventKind::Metric,
                    "binary trace v2: invalid event kind");
    Event e;
    e.kind = kind;
    last += c.varint();
    e.time = last;
    const std::uint32_t refLo = tag >> 3;
    e.ref = refLo == kRefEscape
                ? static_cast<std::uint32_t>(c.varint())
                : refLo;
    switch (kind) {
      case EventKind::Enter:
      case EventKind::Leave:
        break;
      case EventKind::MpiSend:
      case EventKind::MpiRecv:
        e.aux = static_cast<std::uint32_t>(c.varint());
        e.size = c.varint();
        break;
      case EventKind::Metric:
        e.value = c.f64();
        break;
    }
    out.push_back(e);
  }
  PERFVAR_REQUIRE(c.atEnd(), "binary trace v2: trailing bytes in block");
}

// ---- header parsing -------------------------------------------------------

struct V2Layout {
  std::uint64_t resolution = 0;
  std::uint64_t defsOffset = 0;
  std::uint64_t defsSize = 0;
  std::vector<TableEntry> table;
};

/// Validate the prologue-to-table region of a v2 image (bounds + header
/// hash + defs hash) and return the parsed layout.
V2Layout parseHeader(const unsigned char* image, std::size_t size) {
  PERFVAR_REQUIRE(size >= kTableOffset, "binary trace v2: truncated header");
  V2Layout layout;
  const std::uint64_t storedHeaderHash = getU64LE(image + kHeaderHashOffset);
  layout.resolution = getU64LE(image + kFixedHeaderOffset);
  const std::uint64_t nProcs = getU64LE(image + 24);
  layout.defsSize = getU64LE(image + 32);
  const std::uint64_t storedDefsHash = getU64LE(image + 40);

  PERFVAR_REQUIRE(nProcs >= 1 && nProcs < (1ULL << 24),
                  "binary trace v2: invalid process count");
  const std::uint64_t tableBytes = nProcs * kTableEntrySize;
  PERFVAR_REQUIRE(kTableOffset + tableBytes <= size,
                  "binary trace v2: truncated block table");
  const std::uint64_t headerBytes = kTableOffset + tableBytes -
                                    kFixedHeaderOffset;
  PERFVAR_REQUIRE(
      fnv1a(image + kFixedHeaderOffset,
            static_cast<std::size_t>(headerBytes)) == storedHeaderHash,
      "binary trace v2: header checksum mismatch");

  // Everything below is authenticated by the header hash.
  PERFVAR_REQUIRE(layout.resolution > 0, "binary trace v2: zero resolution");
  layout.defsOffset = kTableOffset + tableBytes;
  PERFVAR_REQUIRE(layout.defsOffset + layout.defsSize <= size,
                  "binary trace v2: truncated definitions block");
  PERFVAR_REQUIRE(
      fnv1a(image + layout.defsOffset,
            static_cast<std::size_t>(layout.defsSize)) == storedDefsHash,
      "binary trace v2: definitions checksum mismatch");

  layout.table.resize(static_cast<std::size_t>(nProcs));
  const std::uint64_t defsEnd = layout.defsOffset + layout.defsSize;
  for (std::size_t i = 0; i < layout.table.size(); ++i) {
    const unsigned char* entry = image + kTableOffset + i * kTableEntrySize;
    TableEntry& t = layout.table[i];
    t.offset = getU64LE(entry);
    t.size = getU64LE(entry + 8);
    t.events = getU64LE(entry + 16);
    t.hash = getU64LE(entry + 24);
    PERFVAR_REQUIRE(t.offset >= defsEnd && t.offset + t.size <= size &&
                        t.offset + t.size >= t.offset,
                    "binary trace v2: block extent out of range");
  }
  return layout;
}

/// Decode the definitions block (functions, metrics, process names).
std::vector<std::string> decodeDefs(const unsigned char* image,
                                    const V2Layout& layout, Trace& trace) {
  ByteCursor c(image + layout.defsOffset,
               image + layout.defsOffset + layout.defsSize);
  const std::uint64_t nFuncs = c.varint();
  PERFVAR_REQUIRE(nFuncs < (1ULL << 24), "binary trace v2: too many functions");
  for (std::uint64_t i = 0; i < nFuncs; ++i) {
    const std::string name = c.string();
    const std::string group = c.string();
    const auto paradigm = static_cast<Paradigm>(c.u8());
    PERFVAR_REQUIRE(paradigm <= Paradigm::Other,
                    "binary trace v2: invalid paradigm");
    trace.functions.intern(name, group, paradigm);
  }
  const std::uint64_t nMetrics = c.varint();
  PERFVAR_REQUIRE(nMetrics < (1ULL << 24), "binary trace v2: too many metrics");
  for (std::uint64_t i = 0; i < nMetrics; ++i) {
    const std::string name = c.string();
    const std::string unit = c.string();
    const auto mode = static_cast<MetricMode>(c.u8());
    PERFVAR_REQUIRE(mode <= MetricMode::Absolute,
                    "binary trace v2: invalid metric mode");
    trace.metrics.intern(name, unit, mode);
  }
  std::vector<std::string> names;
  names.reserve(layout.table.size());
  for (std::size_t i = 0; i < layout.table.size(); ++i) {
    names.push_back(c.string());
  }
  PERFVAR_REQUIRE(c.atEnd(),
                  "binary trace v2: trailing bytes in definitions block");
  return names;
}

/// Resolve the effective pool: the caller's, a transient one, or none
/// (inline execution).
util::ThreadPool* resolvePool(util::ThreadPool* external, std::size_t threads,
                              std::unique_ptr<util::ThreadPool>& owned) {
  if (external != nullptr) {
    return external;
  }
  if (threads != 1) {
    owned = std::make_unique<util::ThreadPool>(threads);
    return owned.get();
  }
  return nullptr;
}

}  // namespace

void writeBinaryV2(const Trace& trace, std::ostream& out,
                   const BinaryWriteOptions& options) {
  const std::size_t nProcs = trace.processes.size();
  const std::string defs = encodeDefs(trace);

  // Encode all event blocks (in parallel when requested; each task fills
  // only its own slot, so the bytes are thread-count independent).
  std::vector<std::string> blocks(nProcs);
  std::vector<std::uint64_t> hashes(nProcs, 0);
  std::unique_ptr<util::ThreadPool> owned;
  util::ThreadPool* pool = resolvePool(options.pool, options.threads, owned);
  util::parallelChunks(pool, nProcs, 1,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           blocks[i] = encodeEvents(trace.processes[i]);
                           hashes[i] = fnv1a(
                               reinterpret_cast<const unsigned char*>(
                                   blocks[i].data()),
                               blocks[i].size());
                         }
                       });

  // Assemble header + table.
  std::string header;  // bytes [16, 48 + 32 * P)
  header.reserve(kTableOffset - kFixedHeaderOffset +
                 nProcs * kTableEntrySize);
  putU64LE(header, trace.resolution);
  putU64LE(header, nProcs);
  putU64LE(header, defs.size());
  putU64LE(header, fnv1a(reinterpret_cast<const unsigned char*>(defs.data()),
                         defs.size()));
  std::uint64_t offset = kTableOffset + nProcs * kTableEntrySize +
                         defs.size();
  for (std::size_t i = 0; i < nProcs; ++i) {
    putU64LE(header, offset);
    putU64LE(header, blocks[i].size());
    putU64LE(header, trace.processes[i].events.size());
    putU64LE(header, hashes[i]);
    offset += blocks[i].size();
  }

  std::string prologue;
  prologue.append(kBinaryMagic, 4);
  for (int i = 0; i < 4; ++i) {
    prologue.push_back(
        static_cast<char>((kBinaryFormatV2 >> (8 * i)) & 0xFF));
  }
  putU64LE(prologue,
           fnv1a(reinterpret_cast<const unsigned char*>(header.data()),
                 header.size()));

  out.write(prologue.data(), static_cast<std::streamsize>(prologue.size()));
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(defs.data(), static_cast<std::streamsize>(defs.size()));
  for (const std::string& block : blocks) {
    out.write(block.data(), static_cast<std::streamsize>(block.size()));
  }
  PERFVAR_REQUIRE(out.good(), "binary trace v2: write failed");
}

Trace readBinaryV2(const unsigned char* image, std::size_t size,
                   const BinaryReadOptions& options, BinaryFileInfo* info) {
  const V2Layout layout = parseHeader(image, size);
  Trace trace;
  trace.resolution = layout.resolution;
  const std::vector<std::string> names = decodeDefs(image, layout, trace);

  trace.processes.resize(layout.table.size());
  std::unique_ptr<util::ThreadPool> owned;
  util::ThreadPool* pool = resolvePool(options.pool, options.threads, owned);
  // Per-rank decode, zero-copy out of the image; every task verifies and
  // fills only its own process slot, and reassembly order is fixed by the
  // table, so the result is identical for every thread count.
  util::parallelChunks(
      pool, layout.table.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const TableEntry& t = layout.table[i];
          const unsigned char* block = image + t.offset;
          PERFVAR_REQUIRE(
              fnv1a(block, static_cast<std::size_t>(t.size)) == t.hash,
              "binary trace v2: block checksum mismatch");
          trace.processes[i].name = names[i];
          decodeEvents(block, block + t.size, t.events,
                       trace.processes[i].events);
        }
      });

  if (info != nullptr) {
    info->version = kBinaryFormatV2;
    info->resolution = layout.resolution;
    info->eventCount = trace.eventCount();
    for (std::size_t i = 0; i < layout.table.size(); ++i) {
      info->blocks.push_back(BinaryBlockInfo{
          names[i], layout.table[i].events, layout.table[i].size});
    }
  }
  return trace;
}

BinaryFileInfo inspectBinaryV2(const unsigned char* image, std::size_t size) {
  const V2Layout layout = parseHeader(image, size);
  Trace defsOnly;
  defsOnly.resolution = layout.resolution;
  const std::vector<std::string> names = decodeDefs(image, layout, defsOnly);

  BinaryFileInfo info;
  info.version = kBinaryFormatV2;
  info.resolution = layout.resolution;
  for (std::size_t i = 0; i < layout.table.size(); ++i) {
    info.blocks.push_back(BinaryBlockInfo{
        names[i], layout.table[i].events, layout.table[i].size});
    info.eventCount += layout.table[i].events;
  }
  return info;
}

}  // namespace perfvar::trace::detail
