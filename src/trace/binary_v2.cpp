/// \file binary_v2.cpp
/// Block-based PVTF v2 codec (see docs/FORMAT.md for the layout).
///
/// Design goals, in order:
///   1. Independently decodable per-process blocks: every block carries
///      its own event count, byte extent and FNV-1a checksum in the block
///      table, so blocks decode in parallel straight out of a memory
///      mapping with no cross-block state.
///   2. Checksums over buffers, not streams: one tight loop per block
///      instead of the v1 per-byte virtual istream hashing.
///   3. No regression in file size: the event encoding folds small `ref`
///      values into the tag byte (saving one byte for the overwhelmingly
///      common refs < 31), which pays for the fixed block table many
///      times over on any non-trivial trace.
///
/// Determinism: blocks are encoded/decoded independently and assembled in
/// process order on the calling thread, so the bytes written and the
/// Trace read are identical for every thread count.

#include <algorithm>
#include <bit>
#include <cstring>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "trace/binary_format.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/perf_counters.hpp"
#include "util/thread_pool.hpp"

namespace perfvar::trace::detail {

namespace {

// Fixed-width file offsets (absolute, from the start of the file):
//   0  magic "PVTF"        4 B
//   4  version u32 LE      = 2
//   8  header hash u64 LE  FNV-1a over [16, 48 + 32 * P)
//  16  resolution u64 LE
//  24  process count u64 LE (P)
//  32  defs size u64 LE
//  40  defs hash u64 LE    FNV-1a over the definitions block
//  48  block table         P entries x 32 B
//  48 + 32 * P             definitions block, then P event blocks
constexpr std::size_t kHeaderHashOffset = 8;
constexpr std::size_t kFixedHeaderOffset = 16;
constexpr std::size_t kTableOffset = 48;
constexpr std::size_t kTableEntrySize = 32;

/// In the tag byte, bits 0-2 hold the EventKind and bits 3-7 a small
/// `ref`; kRefEscape means "ref is a varint after the timestamp delta".
constexpr std::uint32_t kRefEscape = 31;

struct TableEntry {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t events = 0;
  std::uint64_t hash = 0;
};

std::uint64_t fnv1a(const unsigned char* data, std::size_t n) {
  return util::Hasher{}.bytes(data, n).digest();
}

// ---- buffer primitives ----------------------------------------------------

void putU64LE(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint64_t getU64LE(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

/// Append-only encoder over a std::string buffer.
class BufferWriter {
public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void varint(std::uint64_t v) {
    do {
      unsigned char b = static_cast<unsigned char>(v & 0x7F);
      v >>= 7;
      if (v != 0) {
        b |= 0x80;
      }
      buf_.push_back(static_cast<char>(b));
    } while (v != 0);
  }

  void f64(double v) { putU64LE(buf_, std::bit_cast<std::uint64_t>(v)); }

  void string(const std::string& s) {
    varint(s.size());
    buf_.append(s);
  }

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

private:
  std::string buf_;
};

}  // namespace

std::uint64_t decodeVarintScalar(const unsigned char*& p,
                                 const unsigned char* end) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    PERFVAR_REQUIRE_E(shift < 64, "binary trace v2: varint too long",
                      ErrorContext::at(ErrorCode::MalformedEvent));
    PERFVAR_REQUIRE_E(p < end, "binary trace v2: truncated block",
                      ErrorContext::at(ErrorCode::TruncatedInput));
    const std::uint8_t b = *p++;
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      break;
    }
    shift += 7;
  }
  return v;
}

std::uint64_t decodeVarint(const unsigned char*& p, const unsigned char* end) {
  // Fast path: with the 10-byte maximum encoding fully in bounds, the
  // unrolled decode needs no per-byte range check. The property tests in
  // tests/trace_binary_v2_test.cpp pin it byte-for-byte (value, cursor
  // advance, error classification) against the scalar loop above.
  if (end - p >= 10) {
    PERFVAR_COUNTER_INC("v2.varint_fast");
    const unsigned char* q = p;
    std::uint64_t v = static_cast<std::uint64_t>(q[0] & 0x7F);
    if ((q[0] & 0x80) == 0) {
      p = q + 1;
      return v;
    }
    v |= static_cast<std::uint64_t>(q[1] & 0x7F) << 7;
    if ((q[1] & 0x80) == 0) {
      p = q + 2;
      return v;
    }
    v |= static_cast<std::uint64_t>(q[2] & 0x7F) << 14;
    if ((q[2] & 0x80) == 0) {
      p = q + 3;
      return v;
    }
    v |= static_cast<std::uint64_t>(q[3] & 0x7F) << 21;
    if ((q[3] & 0x80) == 0) {
      p = q + 4;
      return v;
    }
    v |= static_cast<std::uint64_t>(q[4] & 0x7F) << 28;
    if ((q[4] & 0x80) == 0) {
      p = q + 5;
      return v;
    }
    v |= static_cast<std::uint64_t>(q[5] & 0x7F) << 35;
    if ((q[5] & 0x80) == 0) {
      p = q + 6;
      return v;
    }
    v |= static_cast<std::uint64_t>(q[6] & 0x7F) << 42;
    if ((q[6] & 0x80) == 0) {
      p = q + 7;
      return v;
    }
    v |= static_cast<std::uint64_t>(q[7] & 0x7F) << 49;
    if ((q[7] & 0x80) == 0) {
      p = q + 8;
      return v;
    }
    v |= static_cast<std::uint64_t>(q[8] & 0x7F) << 56;
    if ((q[8] & 0x80) == 0) {
      p = q + 9;
      return v;
    }
    // Tenth byte: shift 63 like the scalar loop (high bits of an overlong
    // final byte drop); a continuation bit here means the encoding would
    // run past 64 value bits, the scalar loop's MalformedEvent case.
    v |= static_cast<std::uint64_t>(q[9] & 0x7F) << 63;
    PERFVAR_REQUIRE_E((q[9] & 0x80) == 0, "binary trace v2: varint too long",
                      ErrorContext::at(ErrorCode::MalformedEvent));
    p = q + 10;
    return v;
  }
  PERFVAR_COUNTER_INC("v2.varint_scalar");
  return decodeVarintScalar(p, end);
}

namespace {

/// Bounds-checked decoder over a byte range; every overrun throws
/// perfvar::Error (the fuzz contract: corrupt inputs never crash).
class ByteCursor {
public:
  ByteCursor(const unsigned char* begin, const unsigned char* end)
      : p_(begin), end_(end) {}

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool atEnd() const { return p_ == end_; }

  std::uint8_t u8() {
    PERFVAR_REQUIRE_E(p_ < end_, "binary trace v2: truncated block",
                      ErrorContext::at(ErrorCode::TruncatedInput));
    return *p_++;
  }

  std::uint64_t varint() { return decodeVarint(p_, end_); }

  double f64() {
    PERFVAR_REQUIRE_E(remaining() >= 8, "binary trace v2: truncated block",
                      ErrorContext::at(ErrorCode::TruncatedInput));
    const std::uint64_t bits = getU64LE(p_);
    p_ += 8;
    return std::bit_cast<double>(bits);
  }

  std::string string() {
    const std::uint64_t n = varint();
    PERFVAR_REQUIRE_E(n < (1ULL << 24), "binary trace v2: oversized string",
                      ErrorContext::at(ErrorCode::MalformedEvent));
    PERFVAR_REQUIRE_E(remaining() >= n, "binary trace v2: truncated string",
                      ErrorContext::at(ErrorCode::TruncatedInput));
    std::string s(reinterpret_cast<const char*>(p_),
                  static_cast<std::size_t>(n));
    p_ += n;
    return s;
  }

  /// Current read position (for salvage byte accounting).
  const unsigned char* pos() const { return p_; }

private:
  const unsigned char* p_;
  const unsigned char* end_;
};

// ---- block codecs ---------------------------------------------------------

std::string encodeDefs(const Trace& trace) {
  std::vector<std::string> names;
  names.reserve(trace.processes.size());
  for (const ProcessTrace& p : trace.processes) {
    names.push_back(p.name);
  }
  return encodeV2Defs(trace.functions, trace.metrics, names);
}

std::string encodeEvents(const ProcessTrace& process) {
  return encodeV2Events(process.events.data(), process.events.size());
}

/// Decode one event at the cursor, accumulating the delta-encoded
/// timestamp into `last`. Throws on any malformed or truncated content.
void decodeOneEvent(ByteCursor& c, Timestamp& last, Event& e) {
  const std::uint8_t tag = c.u8();
  const auto kind = static_cast<EventKind>(tag & 0x07);
  PERFVAR_REQUIRE_E(kind <= EventKind::Metric,
                    "binary trace v2: invalid event kind",
                    ErrorContext::at(ErrorCode::MalformedEvent));
  e.kind = kind;
  last += c.varint();
  e.time = last;
  const std::uint32_t refLo = tag >> 3;
  e.ref = refLo == kRefEscape
              ? static_cast<std::uint32_t>(c.varint())
              : refLo;
  switch (kind) {
    case EventKind::Enter:
    case EventKind::Leave:
      break;
    case EventKind::MpiSend:
    case EventKind::MpiRecv:
      e.aux = static_cast<std::uint32_t>(c.varint());
      e.size = c.varint();
      break;
    case EventKind::Metric:
      e.value = c.f64();
      break;
  }
}

void decodeEvents(const unsigned char* begin, const unsigned char* end,
                  std::uint64_t count, std::vector<Event>& out) {
  // Every event is at least two bytes (tag + delta), so a valid count
  // can never exceed half the block; reserving is then safe even before
  // the events are decoded.
  PERFVAR_REQUIRE_E(count <= static_cast<std::uint64_t>(end - begin) / 2,
                    "binary trace v2: event count exceeds block size",
                    ErrorContext::at(ErrorCode::MalformedEvent));
  out.reserve(static_cast<std::size_t>(count));
  ByteCursor c(begin, end);
  Timestamp last = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    Event e;
    decodeOneEvent(c, last, e);
    out.push_back(e);
  }
  PERFVAR_REQUIRE_E(c.atEnd(), "binary trace v2: trailing bytes in block",
                    ErrorContext::at(ErrorCode::MalformedEvent));
}

/// Best-effort decode of a (possibly corrupt or truncated) block prefix:
/// keep whole events until the first decode failure or `maxCount` events.
/// Growth is bounded by the byte range (every event is >= 2 bytes).
/// Returns the encoded bytes consumed by the events kept.
std::size_t decodeEventsLenient(const unsigned char* begin,
                                const unsigned char* end,
                                std::uint64_t maxCount,
                                std::vector<Event>& out) {
  ByteCursor c(begin, end);
  Timestamp last = 0;
  std::size_t consumed = 0;
  while (!c.atEnd() && out.size() < maxCount) {
    Event e;
    try {
      decodeOneEvent(c, last, e);
    } catch (const Error&) {
      break;
    }
    out.push_back(e);
    consumed = static_cast<std::size_t>(c.pos() - begin);
  }
  return consumed;
}

// ---- header parsing -------------------------------------------------------

struct V2Layout {
  std::uint64_t resolution = 0;
  std::uint64_t defsOffset = 0;
  std::uint64_t defsSize = 0;
  std::vector<TableEntry> table;
  /// Per-entry extent fault (lenient parses only; ErrorCode::None = sane).
  std::vector<ErrorCode> blockFault;
};

/// Validate the prologue-to-table region of a v2 image (bounds + header
/// hash + defs hash) and return the parsed layout. The header, table and
/// definitions must verify even when `lenientBlocks` is set (they are the
/// trust root of a salvage load); lenient parses record per-entry extent
/// faults in blockFault instead of throwing.
V2Layout parseHeader(const unsigned char* image, std::size_t size,
                     bool lenientBlocks = false) {
  PERFVAR_REQUIRE_E(size >= kTableOffset, "binary trace v2: truncated header",
                    ErrorContext::at(ErrorCode::TruncatedInput, size));
  V2Layout layout;
  const std::uint64_t storedHeaderHash = getU64LE(image + kHeaderHashOffset);
  layout.resolution = getU64LE(image + kFixedHeaderOffset);
  const std::uint64_t nProcs = getU64LE(image + 24);
  layout.defsSize = getU64LE(image + 32);
  const std::uint64_t storedDefsHash = getU64LE(image + 40);

  PERFVAR_REQUIRE_E(nProcs >= 1 && nProcs < (1ULL << 24),
                    "binary trace v2: invalid process count",
                    ErrorContext::at(ErrorCode::MalformedEvent, 24));
  const std::uint64_t tableBytes = nProcs * kTableEntrySize;
  PERFVAR_REQUIRE_E(kTableOffset + tableBytes <= size,
                    "binary trace v2: truncated block table",
                    ErrorContext::at(ErrorCode::TruncatedInput, size));
  const std::uint64_t headerBytes = kTableOffset + tableBytes -
                                    kFixedHeaderOffset;
  PERFVAR_REQUIRE_E(
      fnv1a(image + kFixedHeaderOffset,
            static_cast<std::size_t>(headerBytes)) == storedHeaderHash,
      "binary trace v2: header checksum mismatch",
      ErrorContext::at(ErrorCode::ChecksumMismatch, kHeaderHashOffset));

  // Everything below is authenticated by the header hash.
  PERFVAR_REQUIRE_E(layout.resolution > 0, "binary trace v2: zero resolution",
                    ErrorContext::at(ErrorCode::MalformedEvent,
                                     kFixedHeaderOffset));
  layout.defsOffset = kTableOffset + tableBytes;
  PERFVAR_REQUIRE_E(layout.defsOffset + layout.defsSize <= size,
                    "binary trace v2: truncated definitions block",
                    ErrorContext::at(ErrorCode::TruncatedInput, size));
  PERFVAR_REQUIRE_E(
      fnv1a(image + layout.defsOffset,
            static_cast<std::size_t>(layout.defsSize)) == storedDefsHash,
      "binary trace v2: definitions checksum mismatch",
      ErrorContext::at(ErrorCode::ChecksumMismatch, 40));

  layout.table.resize(static_cast<std::size_t>(nProcs));
  layout.blockFault.assign(layout.table.size(), ErrorCode::None);
  const std::uint64_t defsEnd = layout.defsOffset + layout.defsSize;
  for (std::size_t i = 0; i < layout.table.size(); ++i) {
    const std::uint64_t entryOffset = kTableOffset + i * kTableEntrySize;
    const unsigned char* entry = image + entryOffset;
    TableEntry& t = layout.table[i];
    t.offset = getU64LE(entry);
    t.size = getU64LE(entry + 8);
    t.events = getU64LE(entry + 16);
    t.hash = getU64LE(entry + 24);
    const bool noOverflow = t.offset + t.size >= t.offset;
    const bool sane = t.offset >= defsEnd && noOverflow;
    const bool inFile = sane && t.offset + t.size <= size;
    if (inFile) {
      continue;
    }
    // A sane extent reaching past the end of the file is a truncation
    // (salvage can decode the present prefix); anything else is garbage.
    const ErrorCode code = sane ? ErrorCode::TruncatedInput
                                : ErrorCode::MalformedEvent;
    PERFVAR_REQUIRE_E(lenientBlocks,
                      "binary trace v2: block extent out of range",
                      ErrorContext::at(code, entryOffset,
                                       static_cast<std::int64_t>(i)));
    layout.blockFault[i] = code;
  }
  return layout;
}

/// Decode the definitions block (functions, metrics, process names).
std::vector<std::string> decodeDefs(const unsigned char* image,
                                    const V2Layout& layout, Trace& trace) {
  ByteCursor c(image + layout.defsOffset,
               image + layout.defsOffset + layout.defsSize);
  const std::uint64_t nFuncs = c.varint();
  PERFVAR_REQUIRE_E(nFuncs < (1ULL << 24),
                    "binary trace v2: too many functions",
                    ErrorContext::at(ErrorCode::MalformedEvent));
  for (std::uint64_t i = 0; i < nFuncs; ++i) {
    const std::string name = c.string();
    const std::string group = c.string();
    const auto paradigm = static_cast<Paradigm>(c.u8());
    PERFVAR_REQUIRE_E(paradigm <= Paradigm::Other,
                      "binary trace v2: invalid paradigm",
                      ErrorContext::at(ErrorCode::MalformedEvent));
    trace.functions.intern(name, group, paradigm);
  }
  const std::uint64_t nMetrics = c.varint();
  PERFVAR_REQUIRE_E(nMetrics < (1ULL << 24),
                    "binary trace v2: too many metrics",
                    ErrorContext::at(ErrorCode::MalformedEvent));
  for (std::uint64_t i = 0; i < nMetrics; ++i) {
    const std::string name = c.string();
    const std::string unit = c.string();
    const auto mode = static_cast<MetricMode>(c.u8());
    PERFVAR_REQUIRE_E(mode <= MetricMode::Absolute,
                      "binary trace v2: invalid metric mode",
                      ErrorContext::at(ErrorCode::MalformedEvent));
    trace.metrics.intern(name, unit, mode);
  }
  std::vector<std::string> names;
  names.reserve(layout.table.size());
  for (std::size_t i = 0; i < layout.table.size(); ++i) {
    names.push_back(c.string());
  }
  PERFVAR_REQUIRE_E(c.atEnd(),
                    "binary trace v2: trailing bytes in definitions block",
                    ErrorContext::at(ErrorCode::MalformedEvent));
  return names;
}

/// Resolve the effective pool: the caller's, a transient one, or none
/// (inline execution).
util::ThreadPool* resolvePool(util::ThreadPool* external, std::size_t threads,
                              std::unique_ptr<util::ThreadPool>& owned) {
  if (external != nullptr) {
    return external;
  }
  if (threads != 1) {
    owned = std::make_unique<util::ThreadPool>(threads);
    return owned.get();
  }
  return nullptr;
}

}  // namespace

std::string encodeV2Defs(const FunctionRegistry& functions,
                         const MetricRegistry& metrics,
                         const std::vector<std::string>& processNames) {
  BufferWriter w;
  w.varint(functions.size());
  for (const FunctionDef& f : functions.all()) {
    w.string(f.name);
    w.string(f.group);
    w.u8(static_cast<std::uint8_t>(f.paradigm));
  }
  w.varint(metrics.size());
  for (const MetricDef& m : metrics.all()) {
    w.string(m.name);
    w.string(m.unit);
    w.u8(static_cast<std::uint8_t>(m.mode));
  }
  for (const std::string& name : processNames) {
    w.string(name);
  }
  return w.take();
}

std::string encodeV2Events(const Event* events, std::size_t count) {
  BufferWriter w;
  Timestamp last = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const Event& e = events[i];
    const std::uint32_t refLo = std::min(e.ref, kRefEscape);
    w.u8(static_cast<std::uint8_t>(
        static_cast<std::uint32_t>(e.kind) | (refLo << 3)));
    w.varint(e.time - last);
    last = e.time;
    if (refLo == kRefEscape) {
      w.varint(e.ref);
    }
    switch (e.kind) {
      case EventKind::Enter:
      case EventKind::Leave:
        break;
      case EventKind::MpiSend:
      case EventKind::MpiRecv:
        w.varint(e.aux);
        w.varint(e.size);
        break;
      case EventKind::Metric:
        w.f64(e.value);
        break;
    }
  }
  return w.take();
}

V2Summary parseV2Summary(const unsigned char* image, std::size_t size,
                         bool lenientBlocks) {
  const V2Layout layout = parseHeader(image, size, lenientBlocks);
  V2Summary summary;
  summary.resolution = layout.resolution;
  Trace defsOnly;
  summary.processNames = decodeDefs(image, layout, defsOnly);
  summary.functions = std::move(defsOnly.functions);
  summary.metrics = std::move(defsOnly.metrics);
  summary.blocks.resize(layout.table.size());
  for (std::size_t i = 0; i < layout.table.size(); ++i) {
    V2BlockExtent& b = summary.blocks[i];
    b.offset = layout.table[i].offset;
    b.size = layout.table[i].size;
    b.events = layout.table[i].events;
    b.hash = layout.table[i].hash;
    b.fault = layout.blockFault[i];
  }
  return summary;
}

void decodeV2Block(const unsigned char* image, const V2BlockExtent& extent,
                   ProcessId rank, std::vector<Event>& out) {
  const unsigned char* block = image + extent.offset;
  PERFVAR_REQUIRE_E(
      fnv1a(block, static_cast<std::size_t>(extent.size)) == extent.hash,
      "binary trace v2: block checksum mismatch",
      ErrorContext::at(ErrorCode::ChecksumMismatch, extent.offset,
                       static_cast<std::int64_t>(rank)));
  decodeEvents(block, block + extent.size, extent.events, out);
}

void salvageV2Block(const unsigned char* image, std::size_t fileSize,
                    const V2BlockExtent& extent, ProcessId rank,
                    std::size_t functionCount, std::size_t metricCount,
                    std::size_t processCount, RankLoadStatus& status,
                    std::vector<Event>& out) {
  status.bytesTotal = extent.size;
  status.eventsDeclared = extent.events;
  ErrorCode fault = extent.fault;
  if (fault == ErrorCode::None) {
    const unsigned char* block = image + extent.offset;
    if (fnv1a(block, static_cast<std::size_t>(extent.size)) == extent.hash) {
      try {
        decodeEvents(block, block + extent.size, extent.events, out);
        status.ok = true;
        status.error = ErrorCode::None;
        status.bytesSalvaged = extent.size;
        status.eventsSalvaged = extent.events;
        return;  // rank is healthy
      } catch (const Error& e) {
        fault = e.code() == ErrorCode::Generic ? ErrorCode::MalformedEvent
                                               : e.code();
        out.clear();
      }
    } else {
      fault = ErrorCode::ChecksumMismatch;
    }
    status.bytesSalvaged = decodeEventsLenient(block, block + extent.size,
                                               extent.events, out);
  } else if (fault == ErrorCode::TruncatedInput && extent.offset < fileSize) {
    // Tail block cut off mid-write: decode the bytes that made it.
    const unsigned char* block = image + extent.offset;
    status.bytesSalvaged = decodeEventsLenient(block, image + fileSize,
                                               extent.events, out);
  }
  status.ok = false;
  status.error = fault;
  status.eventsSalvaged = balanceSalvagedEvents(
      out, functionCount, metricCount, processCount, rank);
  status.eventsDropped = extent.events > status.eventsSalvaged
                             ? extent.events - status.eventsSalvaged
                             : 0;
}

void writeBinaryV2(const Trace& trace, std::ostream& out,
                   const BinaryWriteOptions& options) {
  const std::size_t nProcs = trace.processes.size();
  const std::string defs = encodeDefs(trace);

  // Encode all event blocks (in parallel when requested; each task fills
  // only its own slot, so the bytes are thread-count independent).
  std::vector<std::string> blocks(nProcs);
  std::vector<std::uint64_t> hashes(nProcs, 0);
  std::unique_ptr<util::ThreadPool> owned;
  util::ThreadPool* pool = resolvePool(options.pool, options.threads, owned);
  util::parallelChunks(pool, nProcs, 1,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           blocks[i] = encodeEvents(trace.processes[i]);
                           hashes[i] = fnv1a(
                               reinterpret_cast<const unsigned char*>(
                                   blocks[i].data()),
                               blocks[i].size());
                         }
                       });

  // Assemble header + table.
  std::string header;  // bytes [16, 48 + 32 * P)
  header.reserve(kTableOffset - kFixedHeaderOffset +
                 nProcs * kTableEntrySize);
  putU64LE(header, trace.resolution);
  putU64LE(header, nProcs);
  putU64LE(header, defs.size());
  putU64LE(header, fnv1a(reinterpret_cast<const unsigned char*>(defs.data()),
                         defs.size()));
  std::uint64_t offset = kTableOffset + nProcs * kTableEntrySize +
                         defs.size();
  for (std::size_t i = 0; i < nProcs; ++i) {
    putU64LE(header, offset);
    putU64LE(header, blocks[i].size());
    putU64LE(header, trace.processes[i].events.size());
    putU64LE(header, hashes[i]);
    offset += blocks[i].size();
  }

  std::string prologue;
  prologue.append(kBinaryMagic, 4);
  for (int i = 0; i < 4; ++i) {
    prologue.push_back(
        static_cast<char>((kBinaryFormatV2 >> (8 * i)) & 0xFF));
  }
  putU64LE(prologue,
           fnv1a(reinterpret_cast<const unsigned char*>(header.data()),
                 header.size()));

  out.write(prologue.data(), static_cast<std::streamsize>(prologue.size()));
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(defs.data(), static_cast<std::streamsize>(defs.size()));
  for (const std::string& block : blocks) {
    out.write(block.data(), static_cast<std::streamsize>(block.size()));
  }
  PERFVAR_REQUIRE(out.good(), "binary trace v2: write failed");
}

Trace readBinaryV2(const unsigned char* image, std::size_t size,
                   const BinaryReadOptions& options, BinaryFileInfo* info) {
  const V2Layout layout = parseHeader(image, size);
  Trace trace;
  trace.resolution = layout.resolution;
  const std::vector<std::string> names = decodeDefs(image, layout, trace);

  trace.processes.resize(layout.table.size());
  std::unique_ptr<util::ThreadPool> owned;
  util::ThreadPool* pool = resolvePool(options.pool, options.threads, owned);
  // Per-rank decode, zero-copy out of the image; every task verifies and
  // fills only its own process slot, and reassembly order is fixed by the
  // table, so the result is identical for every thread count.
  util::parallelChunks(
      pool, layout.table.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const TableEntry& t = layout.table[i];
          const V2BlockExtent extent{t.offset, t.size, t.events, t.hash,
                                     ErrorCode::None};
          trace.processes[i].name = names[i];
          decodeV2Block(image, extent, static_cast<ProcessId>(i),
                        trace.processes[i].events);
        }
      });

  if (info != nullptr) {
    info->version = kBinaryFormatV2;
    info->resolution = layout.resolution;
    info->eventCount = trace.eventCount();
    for (std::size_t i = 0; i < layout.table.size(); ++i) {
      info->blocks.push_back(BinaryBlockInfo{
          names[i], layout.table[i].events, layout.table[i].size,
          layout.table[i].offset});
    }
  }
  return trace;
}

std::size_t balanceSalvagedEvents(std::vector<Event>& events,
                                  std::size_t functionCount,
                                  std::size_t metricCount,
                                  std::size_t processCount, ProcessId self) {
  std::vector<std::uint32_t> open;  // refs of currently open Enter frames
  std::size_t keep = 0;
  for (const Event& e : events) {
    bool sane = true;
    switch (e.kind) {
      case EventKind::Enter:
        sane = e.ref < functionCount;
        if (sane) {
          open.push_back(e.ref);
        }
        break;
      case EventKind::Leave:
        sane = e.ref < functionCount && !open.empty() &&
               open.back() == e.ref;
        if (sane) {
          open.pop_back();
        }
        break;
      case EventKind::MpiSend:
      case EventKind::MpiRecv:
        sane = e.ref < processCount && e.ref != self;
        break;
      case EventKind::Metric:
        sane = e.ref < metricCount;
        break;
    }
    if (!sane) {
      break;
    }
    ++keep;
  }
  events.resize(keep);
  const Timestamp last = keep > 0 ? events[keep - 1].time : 0;
  for (auto it = open.rbegin(); it != open.rend(); ++it) {
    Event close;
    close.kind = EventKind::Leave;
    close.time = last;
    close.ref = *it;
    events.push_back(close);
  }
  return keep;
}

Trace readBinaryV2Salvage(const unsigned char* image, std::size_t size,
                          const BinaryReadOptions& options,
                          LoadReport& report) {
  const V2Layout layout = parseHeader(image, size, /*lenientBlocks=*/true);
  Trace trace;
  trace.resolution = layout.resolution;
  const std::vector<std::string> names = decodeDefs(image, layout, trace);

  const std::size_t nProcs = layout.table.size();
  trace.processes.resize(nProcs);
  report.version = kBinaryFormatV2;
  report.mode = RecoveryMode::Salvage;
  report.ranks.assign(nProcs, RankLoadStatus{});

  std::unique_ptr<util::ThreadPool> owned;
  util::ThreadPool* pool = resolvePool(options.pool, options.threads, owned);
  // Same rank-sharded shape as the strict reader: every task verifies,
  // decodes (or salvages) and reports only its own process slot, so the
  // result is identical for every thread count.
  util::parallelChunks(pool, nProcs, 1, [&](std::size_t begin,
                                            std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const TableEntry& t = layout.table[i];
      RankLoadStatus& st = report.ranks[i];
      st.process = names[i];
      trace.processes[i].name = names[i];
      const V2BlockExtent extent{t.offset, t.size, t.events, t.hash,
                                 layout.blockFault[i]};
      salvageV2Block(image, size, extent, static_cast<ProcessId>(i),
                     trace.functions.size(), trace.metrics.size(), nProcs,
                     st, trace.processes[i].events);
    }
  });
  return trace;
}

AppendStats appendBinaryV2(Trace& trace, const unsigned char* image,
                           std::size_t size,
                           const BinaryReadOptions& options) {
  // Chunks always decode strictly: a half-salvaged chunk appended to a
  // live trace would silently poison every later analysis.
  BinaryReadOptions strict = options;
  strict.recovery = RecoveryMode::Strict;
  strict.report = nullptr;
  Trace chunk = readBinaryV2(image, size, strict, nullptr);

  AppendStats stats;
  const bool empty = trace.processes.empty() && trace.functions.size() == 0 &&
                     trace.metrics.size() == 0;
  if (empty) {
    // Adopt-on-first-append: the first chunk defines the stream.
    for (const ProcessTrace& p : chunk.processes) {
      if (!p.events.empty()) {
        ++stats.processesTouched;
        stats.eventsAppended += p.events.size();
      }
    }
    trace = std::move(chunk);
    return stats;
  }

  PERFVAR_REQUIRE_E(chunk.resolution == trace.resolution,
                    "binary trace append: chunk resolution differs from the "
                    "live trace",
                    ErrorContext::at(ErrorCode::MalformedEvent));
  PERFVAR_REQUIRE_E(chunk.processes.size() == trace.processes.size(),
                    "binary trace append: chunk process count differs from "
                    "the live trace",
                    ErrorContext::at(ErrorCode::MalformedEvent));
  PERFVAR_REQUIRE_E(encodeDefs(chunk) == encodeDefs(trace),
                    "binary trace append: chunk definitions differ from the "
                    "live trace",
                    ErrorContext::at(ErrorCode::MalformedEvent));

  // Validate every stream boundary before mutating anything, so a bad
  // chunk leaves the live trace untouched.
  for (std::size_t i = 0; i < chunk.processes.size(); ++i) {
    const auto& add = chunk.processes[i].events;
    const auto& have = trace.processes[i].events;
    PERFVAR_REQUIRE_E(
        add.empty() || have.empty() || add.front().time >= have.back().time,
        "binary trace append: chunk events precede the live stream",
        ErrorContext::at(ErrorCode::MalformedEvent, 0,
                         static_cast<std::int64_t>(i)));
  }
  for (std::size_t i = 0; i < chunk.processes.size(); ++i) {
    auto& add = chunk.processes[i].events;
    if (add.empty()) {
      continue;
    }
    auto& have = trace.processes[i].events;
    have.insert(have.end(), add.begin(), add.end());
    ++stats.processesTouched;
    stats.eventsAppended += add.size();
  }
  trace.invalidateTimeBounds();
  return stats;
}

BinaryFileInfo inspectBinaryV2(const unsigned char* image, std::size_t size) {
  const V2Layout layout = parseHeader(image, size);
  Trace defsOnly;
  defsOnly.resolution = layout.resolution;
  const std::vector<std::string> names = decodeDefs(image, layout, defsOnly);

  BinaryFileInfo info;
  info.version = kBinaryFormatV2;
  info.resolution = layout.resolution;
  for (std::size_t i = 0; i < layout.table.size(); ++i) {
    info.blocks.push_back(BinaryBlockInfo{
        names[i], layout.table[i].events, layout.table[i].size,
        layout.table[i].offset});
    info.eventCount += layout.table[i].events;
  }
  return info;
}

}  // namespace perfvar::trace::detail
