#ifndef PERFVAR_TRACE_BINARY_FORMAT_HPP
#define PERFVAR_TRACE_BINARY_FORMAT_HPP

/// \file binary_format.hpp
/// Internal interface between the PVTF dispatchers (binary_io.cpp) and
/// the per-version codecs (v1 in binary_io.cpp, v2 in binary_v2.cpp).
/// Not installed, not part of the public API — include binary_io.hpp.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "trace/binary_io.hpp"

namespace perfvar::trace::detail {

inline constexpr char kBinaryMagic[4] = {'P', 'V', 'T', 'F'};

/// Size of the "magic + version" prologue both layouts share.
inline constexpr std::size_t kBinaryPrologueSize = 8;

/// Legacy v1 payload codec. The reader expects `in` positioned after the
/// prologue; when `blocks` is non-null it records per-process stream
/// extents (for inspectBinaryFile).
void writeBinaryV1(const Trace& trace, std::ostream& out);
Trace readBinaryV1(std::istream& in, std::vector<BinaryBlockInfo>* blocks);

/// Block-based v2 codec over whole-file images. `image`/`size` span the
/// complete file including the prologue (block table offsets are
/// absolute). The reader decodes event blocks in parallel when the
/// options name a pool or thread count; `info` (optional) receives the
/// file summary.
void writeBinaryV2(const Trace& trace, std::ostream& out,
                   const BinaryWriteOptions& options);
Trace readBinaryV2(const unsigned char* image, std::size_t size,
                   const BinaryReadOptions& options, BinaryFileInfo* info);

/// Streaming append of one self-contained v2 chunk image (see
/// appendBinaryBuffer for the contract). Always decodes strictly.
AppendStats appendBinaryV2(Trace& trace, const unsigned char* image,
                           std::size_t size, const BinaryReadOptions& options);

/// v2 file summary from the header, table and definitions block only;
/// event blocks are bounds-checked against the file but neither decoded
/// nor checksummed (inspect stays cheap on large files).
BinaryFileInfo inspectBinaryV2(const unsigned char* image, std::size_t size);

/// Salvage-mode v2 reader: the header, block table and definitions must
/// still verify (they are the trust root), but rank blocks that fail
/// checksum, decode or extent checks are quarantined instead of throwing —
/// each keeps its balanced salvaged event prefix and gets a LoadReport
/// entry. The caller stamps Trace::quarantined from the report.
Trace readBinaryV2Salvage(const unsigned char* image, std::size_t size,
                          const BinaryReadOptions& options,
                          LoadReport& report);

/// Shared salvage post-pass: keep the longest structurally sane prefix of
/// `events` (defined refs, no self-messages, consistent Enter/Leave
/// nesting) and append synthetic Leave events at the last kept timestamp
/// for frames still open, so the stream passes trace::validate(). Returns
/// the number of decoded events kept (the closers come after them).
std::size_t balanceSalvagedEvents(std::vector<Event>& events,
                                  std::size_t functionCount,
                                  std::size_t metricCount,
                                  std::size_t processCount, ProcessId self);

}  // namespace perfvar::trace::detail

#endif  // PERFVAR_TRACE_BINARY_FORMAT_HPP
