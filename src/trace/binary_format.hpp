#ifndef PERFVAR_TRACE_BINARY_FORMAT_HPP
#define PERFVAR_TRACE_BINARY_FORMAT_HPP

/// \file binary_format.hpp
/// Internal interface between the PVTF dispatchers (binary_io.cpp) and
/// the per-version codecs (v1 in binary_io.cpp, v2 in binary_v2.cpp).
/// Not installed, not part of the public API — include binary_io.hpp.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "trace/binary_io.hpp"

namespace perfvar::trace::detail {

inline constexpr char kBinaryMagic[4] = {'P', 'V', 'T', 'F'};

/// Bounds-checked LEB128 decode advancing `p`. Throws perfvar::Error with
/// ErrorCode::TruncatedInput when the encoding runs past `end` and
/// ErrorCode::MalformedEvent when it would exceed 64 value bits (more
/// than 10 bytes). decodeVarint takes a fully-unrolled fast path whenever
/// 10 bytes are in bounds (one range check for the whole maximum
/// encoding); decodeVarintScalar is the byte-at-a-time loop it must match
/// byte for byte — exposed so the property tests can compare the two over
/// random and adversarial encodings.
std::uint64_t decodeVarint(const unsigned char*& p, const unsigned char* end);
std::uint64_t decodeVarintScalar(const unsigned char*& p,
                                 const unsigned char* end);

/// Size of the "magic + version" prologue both layouts share.
inline constexpr std::size_t kBinaryPrologueSize = 8;

/// Legacy v1 payload codec. The reader expects `in` positioned after the
/// prologue; when `blocks` is non-null it records per-process stream
/// extents (for inspectBinaryFile).
void writeBinaryV1(const Trace& trace, std::ostream& out);
Trace readBinaryV1(std::istream& in, std::vector<BinaryBlockInfo>* blocks);

/// Block-based v2 codec over whole-file images. `image`/`size` span the
/// complete file including the prologue (block table offsets are
/// absolute). The reader decodes event blocks in parallel when the
/// options name a pool or thread count; `info` (optional) receives the
/// file summary.
void writeBinaryV2(const Trace& trace, std::ostream& out,
                   const BinaryWriteOptions& options);
Trace readBinaryV2(const unsigned char* image, std::size_t size,
                   const BinaryReadOptions& options, BinaryFileInfo* info);

/// Streaming append of one self-contained v2 chunk image (see
/// appendBinaryBuffer for the contract). Always decodes strictly.
AppendStats appendBinaryV2(Trace& trace, const unsigned char* image,
                           std::size_t size, const BinaryReadOptions& options);

/// v2 file summary from the header, table and definitions block only;
/// event blocks are bounds-checked against the file but neither decoded
/// nor checksummed (inspect stays cheap on large files).
BinaryFileInfo inspectBinaryV2(const unsigned char* image, std::size_t size);

/// Salvage-mode v2 reader: the header, block table and definitions must
/// still verify (they are the trust root), but rank blocks that fail
/// checksum, decode or extent checks are quarantined instead of throwing —
/// each keeps its balanced salvaged event prefix and gets a LoadReport
/// entry. The caller stamps Trace::quarantined from the report.
Trace readBinaryV2Salvage(const unsigned char* image, std::size_t size,
                          const BinaryReadOptions& options,
                          LoadReport& report);

/// Shared salvage post-pass: keep the longest structurally sane prefix of
/// `events` (defined refs, no self-messages, consistent Enter/Leave
/// nesting) and append synthetic Leave events at the last kept timestamp
/// for frames still open, so the stream passes the structural lint rules.
/// Returns the number of decoded events kept (the closers come after them).
std::size_t balanceSalvagedEvents(std::vector<Event>& events,
                                  std::size_t functionCount,
                                  std::size_t metricCount,
                                  std::size_t processCount, ProcessId self);

// ---- shared v2 codec building blocks ---------------------------------------
//
// The pieces below are the exact per-block primitives the eager v2 readers
// are built from, exposed so the out-of-core TraceView backend (view.cpp)
// and the rank-streaming writer (stream_writer.cpp) share them verbatim —
// byte/bit identity between the eager and lazy paths holds by construction.

/// Parsed extent of one v2 event block (one block table entry).
struct V2BlockExtent {
  std::uint64_t offset = 0;  ///< absolute file offset of the block
  std::uint64_t size = 0;    ///< encoded size in bytes
  std::uint64_t events = 0;  ///< declared event count
  std::uint64_t hash = 0;    ///< FNV-1a over the encoded block
  /// Extent fault recorded by a lenient parse (None = extent is sane and
  /// inside the file). Strict parses throw instead.
  ErrorCode fault = ErrorCode::None;
};

/// Header + block table + decoded definitions of a v2 image — everything
/// except the event blocks. This is the trust root: parseV2Summary()
/// throws on any header/table/defs fault even in lenient mode.
struct V2Summary {
  std::uint64_t resolution = 0;
  FunctionRegistry functions;
  MetricRegistry metrics;
  std::vector<std::string> processNames;  ///< one per block, table order
  std::vector<V2BlockExtent> blocks;
};

/// Validate the prologue-to-definitions region of a v2 image (bounds,
/// header hash, defs hash) and decode the definitions. `image`/`size` span
/// the whole file. With `lenientBlocks`, per-block extent faults are
/// recorded in V2BlockExtent::fault instead of throwing.
V2Summary parseV2Summary(const unsigned char* image, std::size_t size,
                         bool lenientBlocks = false);

/// Verify the checksum of one event block and decode it strictly (exact
/// declared count, no trailing bytes). Throws perfvar::Error on any fault,
/// with `rank` attached as the error context rank.
void decodeV2Block(const unsigned char* image, const V2BlockExtent& extent,
                   ProcessId rank, std::vector<Event>& out);

/// Salvage one event block: verify + strict decode when possible, lenient
/// prefix decode + balanceSalvagedEvents otherwise. Fills `status`
/// (process name left untouched) exactly as a Salvage-mode load would and
/// returns the balanced events in `out`. `fileSize` bounds tail-truncated
/// blocks.
void salvageV2Block(const unsigned char* image, std::size_t fileSize,
                    const V2BlockExtent& extent, ProcessId rank,
                    std::size_t functionCount, std::size_t metricCount,
                    std::size_t processCount, RankLoadStatus& status,
                    std::vector<Event>& out);

/// Encode the v2 definitions block (functions, metrics, process names).
std::string encodeV2Defs(const FunctionRegistry& functions,
                         const MetricRegistry& metrics,
                         const std::vector<std::string>& processNames);

/// Encode one v2 event block (delta timestamps, varints, folded refs).
std::string encodeV2Events(const Event* events, std::size_t count);

}  // namespace perfvar::trace::detail

#endif  // PERFVAR_TRACE_BINARY_FORMAT_HPP
