#ifndef PERFVAR_TRACE_ARCHIVE_HPP
#define PERFVAR_TRACE_ARCHIVE_HPP

/// \file archive.hpp
/// Multi-file trace archives, mirroring OTF2's on-disk layout.
///
/// Score-P writes one event file per location plus shared definition and
/// anchor files, so that large traces can be written without any
/// inter-process communication and read selectively. The PVTA archive
/// reproduces that structure on top of the PVTF binary format:
///
///   <dir>/anchor.pva        text: magic, version, rank count
///   <dir>/definitions.pvt   PVTF: definitions only (no events)
///   <dir>/rank<k>.pvt       PVTF: one process, rank k's events
///
/// loadArchive() can read all ranks or any subset (e.g. just the ranks a
/// hotspot analysis flagged) without touching the other files.

#include <cstddef>
#include <string>
#include <vector>

#include "trace/binary_io.hpp"
#include "trace/trace.hpp"

namespace perfvar::trace {

/// Write `trace` as a PVTA archive directory (created if needed; existing
/// archive files are overwritten). The per-rank PVTF files are written in
/// `options.version` (v2 by default).
void saveArchive(const Trace& trace, const std::string& directory,
                 const BinaryWriteOptions& options = {});

/// Options of the archive readers.
struct ArchiveReadOptions {
  /// Worker threads for loading rank files: 1 (default) loads serially,
  /// 0 = hardware concurrency. Rank files are independent, each task
  /// fills only its own process slot, so the result is identical for
  /// every thread count.
  std::size_t threads = 1;
};

/// Archive metadata from the anchor file.
struct ArchiveInfo {
  std::size_t ranks = 0;
  std::uint64_t resolution = 0;
};

/// Read the anchor of an archive (cheap; no event data touched).
ArchiveInfo readArchiveInfo(const std::string& directory);

/// Load the complete archive.
Trace loadArchive(const std::string& directory,
                  const ArchiveReadOptions& options = {});

/// Load a subset of ranks. The resulting trace contains only the selected
/// processes, renumbered densely in the given order (message peer ids are
/// remapped; messages to unselected ranks are dropped, as in
/// selectProcesses()).
Trace loadArchiveRanks(const std::string& directory,
                       const std::vector<ProcessId>& ranks,
                       const ArchiveReadOptions& options = {});

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_ARCHIVE_HPP
