#include "trace/stats.hpp"

#include <sstream>

#include "util/format.hpp"

namespace perfvar::trace {

TraceStats computeStats(const TraceView& trace) {
  TraceStats s;
  s.processCount = trace.processCount();
  s.functionCount = trace.functions().size();
  s.metricCount = trace.metrics().size();
  s.startTime = trace.startTime();
  s.endTime = trace.endTime();
  s.durationSeconds = trace.durationSeconds();
  for (ProcessId p = 0; p < trace.processCount(); ++p) {
    const RankPin pin = trace.rank(p);
    std::size_t depth = 0;
    for (const Event& e : pin.events()) {
      ++s.eventCount;
      ++s.eventsByKind[static_cast<std::size_t>(e.kind)];
      switch (e.kind) {
        case EventKind::Enter:
          ++depth;
          s.maxStackDepth = std::max(s.maxStackDepth, depth);
          break;
        case EventKind::Leave:
          if (depth > 0) {
            --depth;
          }
          break;
        case EventKind::MpiSend:
          ++s.messageCount;
          s.messageBytes += e.size;
          break;
        default:
          break;
      }
    }
  }
  return s;
}

std::size_t approxMemoryBytes(const Trace& trace) {
  std::size_t bytes = sizeof(Trace);
  for (const auto& p : trace.processes) {
    bytes += sizeof(p) + p.name.size() + p.events.capacity() * sizeof(Event);
  }
  for (const auto& f : trace.functions.all()) {
    bytes += sizeof(f) + f.name.size() + f.group.size();
  }
  for (const auto& m : trace.metrics.all()) {
    bytes += sizeof(m) + m.name.size() + m.unit.size();
  }
  for (const auto& q : trace.quarantined) {
    bytes += sizeof(q) + q.name.size();
  }
  return bytes;
}

std::size_t approxMemoryBytes(const TraceView& trace) {
  std::size_t bytes = sizeof(Trace);
  for (ProcessId p = 0; p < trace.processCount(); ++p) {
    bytes += sizeof(ProcessTrace) + trace.processName(p).size() +
             trace.eventCount(p) * sizeof(Event);
  }
  for (const auto& f : trace.functions().all()) {
    bytes += sizeof(f) + f.name.size() + f.group.size();
  }
  for (const auto& m : trace.metrics().all()) {
    bytes += sizeof(m) + m.name.size() + m.unit.size();
  }
  for (const auto& q : trace.quarantined()) {
    bytes += sizeof(q) + q.name.size();
  }
  return bytes;
}

std::string formatStats(const TraceStats& s) {
  std::ostringstream os;
  os << "processes:   " << s.processCount << '\n'
     << "functions:   " << s.functionCount << '\n'
     << "metrics:     " << s.metricCount << '\n'
     << "events:      " << s.eventCount << " (enter "
     << s.eventsByKind[static_cast<std::size_t>(EventKind::Enter)] << ", leave "
     << s.eventsByKind[static_cast<std::size_t>(EventKind::Leave)] << ", send "
     << s.eventsByKind[static_cast<std::size_t>(EventKind::MpiSend)]
     << ", recv "
     << s.eventsByKind[static_cast<std::size_t>(EventKind::MpiRecv)]
     << ", metric "
     << s.eventsByKind[static_cast<std::size_t>(EventKind::Metric)] << ")\n"
     << "messages:    " << s.messageCount << " carrying "
     << fmt::bytes(s.messageBytes) << '\n'
     << "duration:    " << fmt::seconds(s.durationSeconds) << '\n'
     << "max depth:   " << s.maxStackDepth << '\n';
  return os.str();
}

}  // namespace perfvar::trace
