#include "trace/replay.hpp"

#include "util/error.hpp"

namespace perfvar::trace {

namespace {

/// Adapter running the std::function-based ReplayVisitor through the
/// statically-typed walk; absent callbacks stay skippable.
struct DynamicVisitor {
  const ReplayVisitor& v;

  void onEnter(FunctionId f, Timestamp t, std::size_t depth) const {
    if (v.onEnter) {
      v.onEnter(f, t, depth);
    }
  }
  void onLeave(const Frame& frame) const {
    if (v.onLeave) {
      v.onLeave(frame);
    }
  }
  void onMessage(bool isSend, const Event& e) const {
    if (v.onMessage) {
      v.onMessage(isSend, e);
    }
  }
  void onMetric(const Event& e, std::size_t depth) const {
    if (v.onMetric) {
      v.onMetric(e, depth);
    }
  }
};

}  // namespace

void replayEvents(EventSpan events, const ReplayVisitor& visitor) {
  replayEventsWith(events, DynamicVisitor{visitor});
}

void replayProcess(const ProcessTrace& process, const ReplayVisitor& visitor) {
  replayEvents(EventSpan(process.events.data(), process.events.size()),
               visitor);
}

void replayTrace(const TraceView& trace,
                 const std::function<ReplayVisitor(ProcessId)>& makeVisitor) {
  for (ProcessId p = 0; p < trace.processCount(); ++p) {
    const RankPin pin = trace.rank(p);
    replayEvents(pin.events(), makeVisitor(p));
  }
}

std::vector<Frame> collectFrames(EventSpan events) {
  std::vector<Frame> frames;
  ReplayVisitor v;
  v.onLeave = [&](const Frame& f) { frames.push_back(f); };
  replayEvents(events, v);
  return frames;
}

std::vector<Frame> collectFrames(const ProcessTrace& process) {
  return collectFrames(EventSpan(process.events.data(), process.events.size()));
}

}  // namespace perfvar::trace
