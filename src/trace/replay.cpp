#include "trace/replay.hpp"

#include "util/error.hpp"

namespace perfvar::trace {

void replayProcess(const ProcessTrace& process, const ReplayVisitor& visitor) {
  struct OpenFrame {
    FunctionId function;
    Timestamp enterTime;
    Timestamp childrenTime;
  };
  std::vector<OpenFrame> stack;
  for (const Event& e : process.events) {
    switch (e.kind) {
      case EventKind::Enter: {
        if (visitor.onEnter) {
          visitor.onEnter(e.ref, e.time, stack.size());
        }
        stack.push_back(OpenFrame{e.ref, e.time, 0});
        break;
      }
      case EventKind::Leave: {
        PERFVAR_REQUIRE(!stack.empty() && stack.back().function == e.ref,
                        "replay: unbalanced enter/leave");
        const OpenFrame open = stack.back();
        stack.pop_back();
        Frame frame;
        frame.function = open.function;
        frame.parent =
            stack.empty() ? kInvalidFunction : stack.back().function;
        frame.enterTime = open.enterTime;
        frame.leaveTime = e.time;
        frame.depth = stack.size();
        frame.childrenTime = open.childrenTime;
        if (!stack.empty()) {
          stack.back().childrenTime += frame.inclusive();
        }
        if (visitor.onLeave) {
          visitor.onLeave(frame);
        }
        break;
      }
      case EventKind::MpiSend:
        if (visitor.onMessage) {
          visitor.onMessage(true, e);
        }
        break;
      case EventKind::MpiRecv:
        if (visitor.onMessage) {
          visitor.onMessage(false, e);
        }
        break;
      case EventKind::Metric:
        if (visitor.onMetric) {
          visitor.onMetric(e, stack.size());
        }
        break;
    }
  }
  PERFVAR_REQUIRE(stack.empty(), "replay: unclosed frames at stream end");
}

void replayTrace(const Trace& trace,
                 const std::function<ReplayVisitor(ProcessId)>& makeVisitor) {
  for (ProcessId p = 0; p < trace.processes.size(); ++p) {
    replayProcess(trace.processes[p], makeVisitor(p));
  }
}

std::vector<Frame> collectFrames(const ProcessTrace& process) {
  std::vector<Frame> frames;
  ReplayVisitor v;
  v.onLeave = [&](const Frame& f) { frames.push_back(f); };
  replayProcess(process, v);
  return frames;
}

}  // namespace perfvar::trace
