#include "trace/replay.hpp"

#include "util/error.hpp"

namespace perfvar::trace {

void replayEvents(EventSpan events, const ReplayVisitor& visitor) {
  struct OpenFrame {
    FunctionId function;
    Timestamp enterTime;
    Timestamp childrenTime;
  };
  std::vector<OpenFrame> stack;
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::Enter: {
        if (visitor.onEnter) {
          visitor.onEnter(e.ref, e.time, stack.size());
        }
        stack.push_back(OpenFrame{e.ref, e.time, 0});
        break;
      }
      case EventKind::Leave: {
        PERFVAR_REQUIRE(!stack.empty() && stack.back().function == e.ref,
                        "replay: unbalanced enter/leave");
        const OpenFrame open = stack.back();
        stack.pop_back();
        Frame frame;
        frame.function = open.function;
        frame.parent =
            stack.empty() ? kInvalidFunction : stack.back().function;
        frame.enterTime = open.enterTime;
        frame.leaveTime = e.time;
        frame.depth = stack.size();
        frame.childrenTime = open.childrenTime;
        if (!stack.empty()) {
          stack.back().childrenTime += frame.inclusive();
        }
        if (visitor.onLeave) {
          visitor.onLeave(frame);
        }
        break;
      }
      case EventKind::MpiSend:
        if (visitor.onMessage) {
          visitor.onMessage(true, e);
        }
        break;
      case EventKind::MpiRecv:
        if (visitor.onMessage) {
          visitor.onMessage(false, e);
        }
        break;
      case EventKind::Metric:
        if (visitor.onMetric) {
          visitor.onMetric(e, stack.size());
        }
        break;
    }
  }
  PERFVAR_REQUIRE(stack.empty(), "replay: unclosed frames at stream end");
}

void replayProcess(const ProcessTrace& process, const ReplayVisitor& visitor) {
  replayEvents(EventSpan(process.events.data(), process.events.size()),
               visitor);
}

void replayTrace(const TraceView& trace,
                 const std::function<ReplayVisitor(ProcessId)>& makeVisitor) {
  for (ProcessId p = 0; p < trace.processCount(); ++p) {
    const RankPin pin = trace.rank(p);
    replayEvents(pin.events(), makeVisitor(p));
  }
}

std::vector<Frame> collectFrames(EventSpan events) {
  std::vector<Frame> frames;
  ReplayVisitor v;
  v.onLeave = [&](const Frame& f) { frames.push_back(f); };
  replayEvents(events, v);
  return frames;
}

std::vector<Frame> collectFrames(const ProcessTrace& process) {
  return collectFrames(EventSpan(process.events.data(), process.events.size()));
}

}  // namespace perfvar::trace
