#ifndef PERFVAR_TRACE_EVENT_HPP
#define PERFVAR_TRACE_EVENT_HPP

/// \file event.hpp
/// The per-process event record.
///
/// A compact fixed-size record is used instead of std::variant so that
/// event streams are cache-friendly and trivially serializable. The fields
/// `ref`, `aux`, `size` and `value` are interpreted per EventKind as
/// documented below.

#include <cstdint>

#include "trace/types.hpp"

namespace perfvar::trace {

/// Kind of one trace event.
enum class EventKind : std::uint8_t {
  Enter,    ///< function entry:   ref = FunctionId
  Leave,    ///< function exit:    ref = FunctionId (must match Enter)
  MpiSend,  ///< message send:     ref = receiver process, aux = tag, size = bytes
  MpiRecv,  ///< message receive:  ref = sender process,   aux = tag, size = bytes
  Metric,   ///< metric sample:    ref = MetricId, value = sample value
};

/// Human-readable name of an event kind.
const char* eventKindName(EventKind k);

/// One timestamped event of a process event stream.
struct Event {
  Timestamp time = 0;
  EventKind kind = EventKind::Enter;
  std::uint32_t ref = 0;
  std::uint32_t aux = 0;
  std::uint64_t size = 0;
  double value = 0.0;

  static Event enter(Timestamp t, FunctionId f) {
    return Event{t, EventKind::Enter, f, 0, 0, 0.0};
  }
  static Event leave(Timestamp t, FunctionId f) {
    return Event{t, EventKind::Leave, f, 0, 0, 0.0};
  }
  static Event mpiSend(Timestamp t, ProcessId receiver, std::uint32_t tag,
                       std::uint64_t bytes) {
    return Event{t, EventKind::MpiSend, receiver, tag, bytes, 0.0};
  }
  static Event mpiRecv(Timestamp t, ProcessId sender, std::uint32_t tag,
                       std::uint64_t bytes) {
    return Event{t, EventKind::MpiRecv, sender, tag, bytes, 0.0};
  }
  static Event metric(Timestamp t, MetricId m, double value) {
    return Event{t, EventKind::Metric, m, 0, 0, value};
  }

  bool operator==(const Event& other) const = default;
};

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_EVENT_HPP
