#include "trace/fault_injection.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "trace/binary_io.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace perfvar::testing {

namespace {

// v2 fixed-header geometry (mirrors binary_v2.cpp; see docs/FORMAT.md).
constexpr std::size_t kHeaderHashOffset = 8;
constexpr std::size_t kFixedHeaderOffset = 16;
constexpr std::size_t kProcessCountOffset = 24;
constexpr std::size_t kTableOffset = 48;
constexpr std::size_t kTableEntrySize = 32;
constexpr std::size_t kEntryEventsOffset = 16;  // within a table entry

std::uint64_t getU64LE(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

void putU64LE(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
}

std::uint32_t imageVersion(const Image& image) {
  PERFVAR_REQUIRE(image.size() >= 8, "fault injection: image too small");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(image[4 + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

/// Mutable view of rank `rank`'s v2 block-table entry.
unsigned char* tableEntry(Image& image, std::size_t rank) {
  PERFVAR_REQUIRE(imageVersion(image) == trace::kBinaryFormatV2,
                  "fault injection: table faults require a v2 image");
  PERFVAR_REQUIRE(image.size() >= kTableOffset,
                  "fault injection: v2 image too small");
  const std::uint64_t nProcs = getU64LE(image.data() + kProcessCountOffset);
  PERFVAR_REQUIRE(rank < nProcs, "fault injection: rank out of range");
  const std::size_t entry = kTableOffset + rank * kTableEntrySize;
  PERFVAR_REQUIRE(entry + kTableEntrySize <= image.size(),
                  "fault injection: v2 block table out of range");
  return image.data() + entry;
}

/// Re-seal the v2 header hash after a table mutation, so the fault stays
/// block-local instead of tripping the header verification.
void fixHeaderHash(Image& image) {
  const std::uint64_t nProcs = getU64LE(image.data() + kProcessCountOffset);
  const std::size_t headerEnd =
      kTableOffset + static_cast<std::size_t>(nProcs) * kTableEntrySize;
  PERFVAR_REQUIRE(headerEnd <= image.size(),
                  "fault injection: v2 block table out of range");
  const std::uint64_t h = util::Hasher{}
                              .bytes(image.data() + kFixedHeaderOffset,
                                     headerEnd - kFixedHeaderOffset)
                              .digest();
  putU64LE(image.data() + kHeaderHashOffset, h);
}

}  // namespace

Image encodeImage(const trace::Trace& tr, std::uint32_t version) {
  std::ostringstream os;
  trace::BinaryWriteOptions options;
  options.version = version;
  trace::writeBinary(tr, os, options);
  const std::string s = os.str();
  return Image(s.begin(), s.end());
}

Image FaultInjector::truncateAt(const Image& image, std::size_t size) {
  PERFVAR_REQUIRE(size <= image.size(),
                  "fault injection: truncation size beyond image");
  return Image(image.begin(),
               image.begin() + static_cast<std::ptrdiff_t>(size));
}

Image FaultInjector::tornTail(const Image& image, std::size_t tailBytes) {
  Image out = image;
  const std::size_t n = std::min(tailBytes, out.size());
  std::fill(out.end() - static_cast<std::ptrdiff_t>(n), out.end(),
            static_cast<unsigned char>(0));
  return out;
}

Image FaultInjector::zeroTableEntry(const Image& image, std::size_t rank) {
  Image out = image;
  unsigned char* entry = tableEntry(out, rank);
  std::fill(entry, entry + kTableEntrySize, static_cast<unsigned char>(0));
  fixHeaderHash(out);
  return out;
}

Image FaultInjector::oversizeCount(const Image& image, std::size_t rank) {
  Image out = image;
  unsigned char* entry = tableEntry(out, rank);
  putU64LE(entry + kEntryEventsOffset, out.size() + 1);
  fixHeaderHash(out);
  return out;
}

Image FaultInjector::bitFlip(const Image& image, std::size_t lo,
                             std::size_t hi, std::size_t flips) {
  PERFVAR_REQUIRE(lo < hi && hi <= image.size(),
                  "fault injection: bit-flip range out of image");
  PERFVAR_REQUIRE(flips <= 8 * (hi - lo),
                  "fault injection: more flips than bits in range");
  Image out = image;
  std::vector<std::pair<std::size_t, unsigned>> done;
  while (done.size() < flips) {
    const auto byte = static_cast<std::size_t>(rng_.uniformInt(
        static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi) - 1));
    const auto bit = static_cast<unsigned>(rng_.uniformInt(0, 7));
    // Distinct bits only: a repeated flip would undo itself and could
    // hand the matrix an uncorrupted "corrupt" image.
    if (std::find(done.begin(), done.end(), std::make_pair(byte, bit)) !=
        done.end()) {
      continue;
    }
    out[byte] ^= static_cast<unsigned char>(1u << bit);
    done.emplace_back(byte, bit);
  }
  return out;
}

}  // namespace perfvar::testing
