#include "trace/filter.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"

namespace perfvar::trace {

Trace sliceTime(const Trace& tr, Timestamp start, Timestamp end) {
  PERFVAR_REQUIRE(start < end, "sliceTime: empty window");
  Trace out;
  out.resolution = tr.resolution;
  out.functions = tr.functions;
  out.metrics = tr.metrics;
  out.processes.resize(tr.processCount());

  for (ProcessId p = 0; p < tr.processes.size(); ++p) {
    const auto& in = tr.processes[p].events;
    auto& dst = out.processes[p];
    dst.name = tr.processes[p].name;

    std::vector<FunctionId> stack;
    std::unordered_map<MetricId, double> lastMetric;
    std::size_t i = 0;

    // Phase 1: replay the pre-window prefix to learn the open stack and
    // the latest cumulative metric values.
    for (; i < in.size() && in[i].time < start; ++i) {
      const Event& e = in[i];
      switch (e.kind) {
        case EventKind::Enter:
          stack.push_back(e.ref);
          break;
        case EventKind::Leave:
          PERFVAR_REQUIRE(!stack.empty() && stack.back() == e.ref,
                          "sliceTime: unbalanced input stream");
          stack.pop_back();
          break;
        case EventKind::Metric:
          lastMetric[e.ref] = e.value;
          break;
        default:
          break;
      }
    }

    // Leave events exactly at `start` close frames whose lifetime has zero
    // overlap with the window; fold them into the prefix so they do not
    // produce zero-length stub frames. (In a valid stream, leaves at a
    // given timestamp precede enters at the same timestamp.)
    for (; i < in.size() && in[i].time == start &&
           in[i].kind == EventKind::Leave;
         ++i) {
      PERFVAR_REQUIRE(!stack.empty() && stack.back() == in[i].ref,
                      "sliceTime: unbalanced input stream");
      stack.pop_back();
    }

    // Synthesize the boundary state at `start`. Carried metric samples go
    // first (outside any frame) so they only set the baseline for
    // accumulated-metric deltas without being attributed to a segment.
    std::vector<std::pair<MetricId, double>> carried(lastMetric.begin(),
                                                     lastMetric.end());
    std::sort(carried.begin(), carried.end());
    for (const auto& [m, v] : carried) {
      dst.events.push_back(Event::metric(start, m, v));
    }
    for (const FunctionId f : stack) {
      dst.events.push_back(Event::enter(start, f));
    }

    // Phase 2: copy the in-window events.
    for (; i < in.size() && in[i].time < end; ++i) {
      const Event& e = in[i];
      switch (e.kind) {
        case EventKind::Enter:
          stack.push_back(e.ref);
          break;
        case EventKind::Leave:
          PERFVAR_REQUIRE(!stack.empty() && stack.back() == e.ref,
                          "sliceTime: unbalanced input stream");
          stack.pop_back();
          break;
        default:
          break;
      }
      dst.events.push_back(e);
    }

    // Phase 3: close frames still open at the window end.
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      dst.events.push_back(Event::leave(end, *it));
    }
  }
  return out;
}

Trace filterFunctions(const Trace& tr,
                      const std::function<bool(FunctionId)>& drop) {
  PERFVAR_REQUIRE(static_cast<bool>(drop), "filterFunctions: null predicate");
  Trace out;
  out.resolution = tr.resolution;
  out.functions = tr.functions;
  out.metrics = tr.metrics;
  out.processes.resize(tr.processCount());
  for (ProcessId p = 0; p < tr.processes.size(); ++p) {
    out.processes[p].name = tr.processes[p].name;
    auto& dst = out.processes[p].events;
    for (const Event& e : tr.processes[p].events) {
      if ((e.kind == EventKind::Enter || e.kind == EventKind::Leave) &&
          drop(e.ref)) {
        continue;
      }
      dst.push_back(e);
    }
  }
  return out;
}

Trace selectProcesses(const Trace& tr,
                      const std::vector<ProcessId>& processes) {
  PERFVAR_REQUIRE(!processes.empty(), "selectProcesses: empty selection");
  std::unordered_map<ProcessId, ProcessId> remap;
  for (std::size_t i = 0; i < processes.size(); ++i) {
    PERFVAR_REQUIRE(processes[i] < tr.processCount(),
                    "selectProcesses: invalid process id");
    PERFVAR_REQUIRE(remap.emplace(processes[i],
                                  static_cast<ProcessId>(i)).second,
                    "selectProcesses: duplicate process id");
  }

  Trace out;
  out.resolution = tr.resolution;
  out.functions = tr.functions;
  out.metrics = tr.metrics;
  out.processes.resize(processes.size());
  for (std::size_t i = 0; i < processes.size(); ++i) {
    const auto& in = tr.processes[processes[i]];
    out.processes[i].name = in.name;
    for (const Event& e : in.events) {
      if (e.kind == EventKind::MpiSend || e.kind == EventKind::MpiRecv) {
        const auto it = remap.find(e.ref);
        if (it == remap.end()) {
          continue;  // peer removed
        }
        Event remapped = e;
        remapped.ref = it->second;
        out.processes[i].events.push_back(remapped);
      } else {
        out.processes[i].events.push_back(e);
      }
    }
  }
  return out;
}

std::vector<Trace> splitByTime(const Trace& tr, std::size_t chunks) {
  PERFVAR_REQUIRE(chunks >= 1, "splitByTime: need at least one chunk");
  const Timestamp start = tr.startTime();
  const Timestamp end = tr.endTime();
  const Timestamp span = end - start;

  std::vector<Trace> out(chunks);
  for (Trace& chunk : out) {
    chunk.resolution = tr.resolution;
    chunk.functions = tr.functions;
    chunk.metrics = tr.metrics;
    chunk.processes.resize(tr.processCount());
    for (ProcessId p = 0; p < tr.processCount(); ++p) {
      chunk.processes[p].name = tr.processes[p].name;
    }
  }

  // Window of a timestamp: equal spans of [start, end], last window
  // inclusive. Assignment is a pure, monotone function of the time alone,
  // so equal timestamps across processes always land in the same chunk —
  // the property that keeps streaming replay order identical to a
  // one-shot replay (floating-point rounding cannot break either
  // guarantee, only nudge a window boundary).
  const auto windowOf = [&](Timestamp t) {
    if (span == 0) {
      return std::size_t{0};
    }
    const double fraction = static_cast<double>(t - start) /
                            (static_cast<double>(span) + 1.0);
    const auto k =
        static_cast<std::size_t>(fraction * static_cast<double>(chunks));
    return std::min(k, chunks - 1);
  };

  for (ProcessId p = 0; p < tr.processCount(); ++p) {
    for (const Event& e : tr.processes[p].events) {
      out[windowOf(e.time)].processes[p].events.push_back(e);
    }
  }
  return out;
}

Trace dropQuarantined(const Trace& tr) {
  if (tr.quarantined.empty()) {
    return tr;
  }
  std::vector<ProcessId> keep;
  keep.reserve(tr.processCount());
  for (ProcessId p = 0; p < tr.processCount(); ++p) {
    if (!tr.isQuarantined(p)) {
      keep.push_back(p);
    }
  }
  PERFVAR_REQUIRE(!keep.empty(),
                  "dropQuarantined: every rank is quarantined");
  return selectProcesses(tr, keep);
}

}  // namespace perfvar::trace
