#ifndef PERFVAR_TRACE_BUILDER_HPP
#define PERFVAR_TRACE_BUILDER_HPP

/// \file builder.hpp
/// Stack-checked construction of traces.
///
/// TraceBuilder plays the role of the Score-P measurement API: callers
/// define functions/metrics, then record enter/leave/message/metric events
/// per process. The builder enforces monotonic timestamps and proper
/// nesting at record time, so a finished trace is valid by construction.

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace perfvar::trace {

class TraceBuilder {
public:
  /// Create a builder for `processCount` processes. Process names default
  /// to "Rank <i>".
  explicit TraceBuilder(std::size_t processCount,
                        std::uint64_t resolution = 1'000'000'000ULL);

  /// Define (or look up) a function.
  FunctionId defineFunction(const std::string& name,
                            const std::string& group = "",
                            Paradigm paradigm = Paradigm::Compute);

  /// Define (or look up) a metric.
  MetricId defineMetric(const std::string& name, const std::string& unit = "",
                        MetricMode mode = MetricMode::Accumulated);

  /// Rename a process.
  void setProcessName(ProcessId p, const std::string& name);

  /// Record a function entry at time `t` on process `p`.
  void enter(ProcessId p, Timestamp t, FunctionId f);

  /// Record a function exit; must match the innermost open enter.
  void leave(ProcessId p, Timestamp t, FunctionId f);

  /// Record a message send event.
  void mpiSend(ProcessId p, Timestamp t, ProcessId receiver, std::uint32_t tag,
               std::uint64_t bytes);

  /// Record a message receive event.
  void mpiRecv(ProcessId p, Timestamp t, ProcessId sender, std::uint32_t tag,
               std::uint64_t bytes);

  /// Record a metric sample.
  void metric(ProcessId p, Timestamp t, MetricId m, double value);

  /// Current call-stack depth of a process.
  std::size_t depth(ProcessId p) const;

  /// Number of events recorded so far on a process.
  std::size_t eventCount(ProcessId p) const;

  /// Finish building. All call stacks must be empty. The builder is left
  /// in a moved-from state; use a fresh builder for the next trace.
  Trace finish();

private:
  void checkProcess(ProcessId p) const;
  void checkTime(ProcessId p, Timestamp t) const;

  Trace trace_;
  std::vector<std::vector<FunctionId>> stacks_;
  std::vector<Timestamp> lastTime_;
  bool finished_ = false;
};

}  // namespace perfvar::trace

#endif  // PERFVAR_TRACE_BUILDER_HPP
