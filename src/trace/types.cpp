#include "trace/types.hpp"

#include <cmath>

#include "util/error.hpp"

namespace perfvar::trace {

const char* paradigmName(Paradigm p) {
  switch (p) {
    case Paradigm::Compute:
      return "COMPUTE";
    case Paradigm::MPI:
      return "MPI";
    case Paradigm::OpenMP:
      return "OPENMP";
    case Paradigm::IO:
      return "IO";
    case Paradigm::Memory:
      return "MEMORY";
    case Paradigm::Other:
      return "OTHER";
  }
  return "OTHER";
}

Paradigm paradigmFromName(const std::string& name) {
  if (name == "COMPUTE") return Paradigm::Compute;
  if (name == "MPI") return Paradigm::MPI;
  if (name == "OPENMP") return Paradigm::OpenMP;
  if (name == "IO") return Paradigm::IO;
  if (name == "MEMORY") return Paradigm::Memory;
  if (name == "OTHER") return Paradigm::Other;
  PERFVAR_REQUIRE(false, "unknown paradigm name: " + name);
  return Paradigm::Other;
}

Timestamp secondsToTicks(double s, std::uint64_t resolution) {
  PERFVAR_REQUIRE(s >= 0.0, "secondsToTicks: negative time");
  return static_cast<Timestamp>(
      std::llround(s * static_cast<double>(resolution)));
}

}  // namespace perfvar::trace
