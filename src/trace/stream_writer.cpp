#include "trace/stream_writer.hpp"

#include "trace/binary_format.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace perfvar::trace {

namespace {

// Mirrors the fixed-width layout in binary_v2.cpp (see docs/FORMAT.md):
// prologue [0,16) = magic | version | header hash; fixed header [16,48);
// block table at 48, 32 bytes per process.
constexpr std::size_t kHeaderHashOffset = 8;
constexpr std::size_t kTableOffset = 48;
constexpr std::size_t kTableEntrySize = 32;

void putU64LE(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint64_t fnv1a(const std::string& s) {
  return util::Hasher{}
      .bytes(reinterpret_cast<const unsigned char*>(s.data()), s.size())
      .digest();
}

}  // namespace

V2StreamWriter::V2StreamWriter(const std::string& path,
                               std::uint64_t resolution,
                               const FunctionRegistry& functions,
                               const MetricRegistry& metrics,
                               const std::vector<std::string>& processNames)
    : out_(path, std::ios::binary), path_(path) {
  PERFVAR_REQUIRE(!processNames.empty(),
                  "V2StreamWriter: need at least one process");
  PERFVAR_REQUIRE(resolution > 0, "V2StreamWriter: zero resolution");
  PERFVAR_REQUIRE_E(out_.good(), "cannot open '" + path + "' for writing",
                    ErrorContext::at(ErrorCode::IoFailure));
  processCount_ = processNames.size();

  const std::string defs =
      detail::encodeV2Defs(functions, metrics, processNames);

  fixedHeader_.reserve(kTableOffset - 16);
  putU64LE(fixedHeader_, resolution);
  putU64LE(fixedHeader_, processCount_);
  putU64LE(fixedHeader_, defs.size());
  putU64LE(fixedHeader_, fnv1a(defs));

  table_.assign(processCount_ * kTableEntrySize, '\0');
  offset_ = kTableOffset + table_.size() + defs.size();

  std::string prologue;
  prologue.append(detail::kBinaryMagic, 4);
  for (int i = 0; i < 4; ++i) {
    prologue.push_back(
        static_cast<char>((kBinaryFormatV2 >> (8 * i)) & 0xFF));
  }
  putU64LE(prologue, 0);  // header-hash placeholder, sealed by finish()

  out_.write(prologue.data(), static_cast<std::streamsize>(prologue.size()));
  out_.write(fixedHeader_.data(),
             static_cast<std::streamsize>(fixedHeader_.size()));
  out_.write(table_.data(), static_cast<std::streamsize>(table_.size()));
  out_.write(defs.data(), static_cast<std::streamsize>(defs.size()));
  PERFVAR_REQUIRE_E(out_.good(), "write to '" + path_ + "' failed",
                    ErrorContext::at(ErrorCode::IoFailure));
}

void V2StreamWriter::writeRank(ProcessId rank, const Event* events,
                               std::size_t count) {
  PERFVAR_REQUIRE(!finished_, "V2StreamWriter: writeRank after finish");
  PERFVAR_REQUIRE(rank == nextRank_,
                  "V2StreamWriter: ranks must be written in process order");
  PERFVAR_REQUIRE(nextRank_ < processCount_,
                  "V2StreamWriter: more ranks than declared processes");

  const std::string block = detail::encodeV2Events(events, count);

  std::string entry;
  entry.reserve(kTableEntrySize);
  putU64LE(entry, offset_);
  putU64LE(entry, block.size());
  putU64LE(entry, count);
  putU64LE(entry, fnv1a(block));
  table_.replace(nextRank_ * kTableEntrySize, kTableEntrySize, entry);

  out_.write(block.data(), static_cast<std::streamsize>(block.size()));
  PERFVAR_REQUIRE_E(out_.good(), "write to '" + path_ + "' failed",
                    ErrorContext::at(ErrorCode::IoFailure));
  offset_ += block.size();
  ++nextRank_;
}

void V2StreamWriter::finish() {
  PERFVAR_REQUIRE(!finished_, "V2StreamWriter: finish called twice");
  PERFVAR_REQUIRE(nextRank_ == processCount_,
                  "V2StreamWriter: finish before every rank was written");
  finished_ = true;

  // Patch the now-complete block table, then re-seal the header hash over
  // [16, 48 + 32 * P) — exactly the bytes writeBinary() hashes, so the
  // file is byte-identical to a one-shot write of the same trace.
  out_.seekp(static_cast<std::streamoff>(kTableOffset));
  out_.write(table_.data(), static_cast<std::streamsize>(table_.size()));

  std::string headerHash;
  putU64LE(headerHash, fnv1a(fixedHeader_ + table_));
  out_.seekp(static_cast<std::streamoff>(kHeaderHashOffset));
  out_.write(headerHash.data(),
             static_cast<std::streamsize>(headerHash.size()));
  out_.close();
  PERFVAR_REQUIRE_E(out_.good(), "write to '" + path_ + "' failed",
                    ErrorContext::at(ErrorCode::IoFailure));
}

}  // namespace perfvar::trace
